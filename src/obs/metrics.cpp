#include "obs/metrics.h"

#include <algorithm>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common/error.h"

namespace vcmr::obs {

namespace {
Labels normalized(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}
}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1, 0) {
  require(std::is_sorted(bounds_.begin(), bounds_.end()) &&
              std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                  bounds_.end(),
          "Histogram: bounds must be strictly increasing");
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += x;
}

void Histogram::merge_from(const Histogram& other) {
  require(bounds_ == other.bounds_,
          "Histogram::merge_from: bucket bounds differ");
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::quantile(double q) const {
  require(q >= 0 && q <= 1, "Histogram::quantile: q must be in [0,1]");
  if (count_ == 0) return 0;
  const double rank = q * static_cast<double>(count_);
  std::int64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i >= bounds_.size()) {
      // Overflow bucket: no upper edge, clamp to its lower bound.
      return bounds_.empty() ? 0 : bounds_.back();
    }
    const double upper = bounds_[i];
    const double lower = i == 0 ? 0 : bounds_[i - 1];
    const std::int64_t in_bucket = buckets_[i];
    if (in_bucket == 0) return upper;
    const double before = static_cast<double>(cumulative - in_bucket);
    const double frac = (rank - before) / static_cast<double>(in_bucket);
    return lower + (upper - lower) * frac;
  }
  return bounds_.empty() ? 0 : bounds_.back();
}

MetricsRegistry*& MetricsRegistry::current() {
  // One shared root for the whole process, but a per-thread *current*
  // pointer: every thread starts at the root (main-thread behaviour is the
  // historical one), and ScopedMetricsRegistry redirects only its own
  // thread. Pool workers therefore isolate themselves by installing a
  // scope, without any locking on the hot counter path.
  static MetricsRegistry root;
  thread_local MetricsRegistry* cur = &root;
  return cur;
}

MetricsRegistry& MetricsRegistry::instance() { return *current(); }

Counter& MetricsRegistry::counter(const std::string& component,
                                  const std::string& name, Labels labels) {
  return counters_[MetricKey{component, name, normalized(std::move(labels))}];
}

Gauge& MetricsRegistry::gauge(const std::string& component,
                              const std::string& name, Labels labels) {
  return gauges_[MetricKey{component, name, normalized(std::move(labels))}];
}

Histogram& MetricsRegistry::histogram(const std::string& component,
                                      const std::string& name,
                                      std::vector<double> bounds,
                                      Labels labels) {
  MetricKey key{component, name, normalized(std::move(labels))};
  const auto it = histograms_.find(key);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::move(key), Histogram(std::move(bounds)))
      .first->second;
}

std::int64_t MetricsRegistry::counter_total(const std::string& component,
                                            const std::string& name) const {
  std::int64_t total = 0;
  for (const auto& [key, c] : counters_) {
    if (key.component == component && key.name == name) total += c.value();
  }
  return total;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [key, c] : other.counters_) {
    counters_[key].add(c.value());
  }
  for (const auto& [key, g] : other.gauges_) {
    gauges_[key].add(g.value());
  }
  for (const auto& [key, h] : other.histograms_) {
    const auto it = histograms_.find(key);
    if (it == histograms_.end()) {
      histograms_.emplace(key, h);
      continue;
    }
    it->second.merge_from(h);
  }
}

void MetricsRegistry::reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

ScopedMetricsRegistry::ScopedMetricsRegistry()
    : prev_(MetricsRegistry::current()) {
  MetricsRegistry::current() = &mine_;
}

ScopedMetricsRegistry::~ScopedMetricsRegistry() {
  MetricsRegistry::current() = prev_;
}

std::int64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::int64_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::int64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace vcmr::obs
