#include "obs/export.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/strings.h"

namespace vcmr::obs {

using common::JsonWriter;

namespace {

std::string labels_json(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ", ";
    first = false;
    out += JsonWriter::quoted(k) + ": " + JsonWriter::quoted(v);
  }
  return out + "}";
}

std::string number(double v) { return common::strprintf("%.6g", v); }

template <class T, class F>
std::string json_array(const std::vector<T>& xs, F&& render) {
  std::string out = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) out += ", ";
    out += render(xs[i]);
  }
  return out + "]";
}

}  // namespace

std::string metrics_json(const MetricsRegistry& registry) {
  std::string counters = "[";
  bool first = true;
  for (const auto& [key, c] : registry.counters()) {
    if (!first) counters += ", ";
    first = false;
    JsonWriter w;
    w.field("component", key.component)
        .field("name", key.name)
        .field_json("labels", labels_json(key.labels))
        .field("value", c.value());
    counters += w.str();
  }
  counters += "]";

  std::string gauges = "[";
  first = true;
  for (const auto& [key, g] : registry.gauges()) {
    if (!first) gauges += ", ";
    first = false;
    JsonWriter w;
    w.field("component", key.component)
        .field("name", key.name)
        .field_json("labels", labels_json(key.labels))
        .field("value", g.value());
    gauges += w.str();
  }
  gauges += "]";

  std::string histograms = "[";
  first = true;
  for (const auto& [key, h] : registry.histograms()) {
    if (!first) histograms += ", ";
    first = false;
    JsonWriter w;
    w.field("component", key.component)
        .field("name", key.name)
        .field_json("labels", labels_json(key.labels))
        .field_json("bounds",
                    json_array(h.bounds(),
                               [](double b) { return number(b); }))
        .field_json("buckets",
                    json_array(h.buckets(),
                               [](std::int64_t n) { return std::to_string(n); }))
        .field("count", h.count())
        .field("sum", h.sum())
        .field_json("p50", number(h.quantile(0.50)))
        .field_json("p95", number(h.quantile(0.95)))
        .field_json("p99", number(h.quantile(0.99)));
    histograms += w.str();
  }
  histograms += "]";

  JsonWriter top;
  top.field_json("counters", counters)
      .field_json("gauges", gauges)
      .field_json("histograms", histograms);
  return top.str();
}

namespace {

/// One rendered trace event plus its sort key; Chrome/Perfetto want the
/// array globally ordered by ts.
struct TraceItem {
  std::int64_t ts;
  std::string json;
};

std::int64_t actor_tid(std::map<std::string, std::int64_t>& tids,
                       std::vector<std::string>& order,
                       const std::string& actor) {
  const auto it = tids.find(actor);
  if (it != tids.end()) return it->second;
  const auto tid = static_cast<std::int64_t>(order.size());
  tids.emplace(actor, tid);
  order.push_back(actor);
  return tid;
}

}  // namespace

std::string chrome_trace_json(const sim::TraceRecorder& trace,
                              const std::vector<Event>& events,
                              const std::vector<CounterSample>& counters) {
  std::map<std::string, std::int64_t> tids;
  std::vector<std::string> order;
  std::vector<TraceItem> items;

  for (const auto& span : trace.spans()) {
    const std::int64_t tid = actor_tid(tids, order, span.actor);
    const std::int64_t ts = span.begin.as_micros();
    JsonWriter w;
    w.field("name", span.label)
        .field("cat", "span")
        .field("ph", "X")
        .field("ts", ts)
        .field("dur", span.end.as_micros() - ts)
        .field("pid", 0)
        .field("tid", tid);
    if (!span.detail.empty())
      w.field_json("args",
                   "{\"detail\": " + JsonWriter::quoted(span.detail) + "}");
    items.push_back({ts, w.str()});
  }

  for (const auto& point : trace.points()) {
    const std::int64_t tid = actor_tid(tids, order, point.actor);
    const std::int64_t ts = point.at.as_micros();
    JsonWriter w;
    w.field("name", point.label)
        .field("cat", "point")
        .field("ph", "i")
        .field("s", "t")
        .field("ts", ts)
        .field("pid", 0)
        .field("tid", tid);
    if (!point.detail.empty())
      w.field_json("args",
                   "{\"detail\": " + JsonWriter::quoted(point.detail) + "}");
    items.push_back({ts, w.str()});
  }

  for (const auto& ev : events) {
    const std::int64_t tid = actor_tid(tids, order, ev.actor);
    const std::int64_t ts = ev.at.as_micros();
    JsonWriter w;
    w.field("name", ev.name)
        .field("cat", "obs")
        .field("ph", "i")
        .field("s", "t")
        .field("ts", ts)
        .field("pid", 0)
        .field("tid", tid)
        .field_json("args", "{\"component\": " + JsonWriter::quoted(ev.component) +
                                ", \"detail\": " + JsonWriter::quoted(ev.detail) +
                                "}");
    items.push_back({ts, w.str()});
  }

  // Counter tracks carry no tid: Chrome/Perfetto key "ph":"C" series by
  // (pid, name) and give each its own value track.
  for (const auto& c : counters) {
    const std::int64_t ts = c.at.as_micros();
    JsonWriter w;
    w.field("name", c.name)
        .field("cat", "counter")
        .field("ph", "C")
        .field("ts", ts)
        .field("pid", 0)
        .field_json("args", "{\"value\": " + number(c.value) + "}");
    items.push_back({ts, w.str()});
  }

  std::stable_sort(items.begin(), items.end(),
                   [](const TraceItem& a, const TraceItem& b) {
                     return a.ts < b.ts;
                   });

  std::string out = "{\"traceEvents\": [";
  bool first = true;
  {
    JsonWriter w;
    w.field("name", "process_name")
        .field("ph", "M")
        .field("pid", 0)
        .field_json("args", "{\"name\": \"vcmr\"}");
    out += w.str();
    first = false;
  }
  for (std::size_t tid = 0; tid < order.size(); ++tid) {
    JsonWriter w;
    w.field("name", "thread_name")
        .field("ph", "M")
        .field("pid", 0)
        .field("tid", static_cast<std::int64_t>(tid))
        .field_json("args",
                    "{\"name\": " + JsonWriter::quoted(order[tid]) + "}");
    out += ", " + w.str();
  }
  for (const auto& item : items) {
    if (!first) out += ", ";
    first = false;
    out += item.json;
  }
  out += "], \"displayTimeUnit\": \"ms\"}";
  return out;
}

}  // namespace vcmr::obs
