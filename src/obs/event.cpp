#include "obs/event.h"

#include <algorithm>

namespace vcmr::obs {

EventBus& EventBus::instance() {
  static EventBus bus;
  return bus;
}

EventBus::Token EventBus::subscribe(Handler handler) {
  const Token token = next_token_++;
  handlers_.emplace_back(token, std::move(handler));
  return token;
}

void EventBus::unsubscribe(Token token) {
  handlers_.erase(
      std::remove_if(handlers_.begin(), handlers_.end(),
                     [token](const auto& h) { return h.first == token; }),
      handlers_.end());
}

void EventBus::publish(const Event& ev) const {
  for (const auto& [token, handler] : handlers_) handler(ev);
}

}  // namespace vcmr::obs
