#include "obs/event.h"

#include <algorithm>

namespace vcmr::obs {

EventBus& EventBus::instance() {
  // One bus per thread. Subscribe/unsubscribe mutate a plain vector with
  // no synchronization — safe only because no other thread can ever reach
  // this bus. Exporters and tests all subscribe on the thread that runs
  // their simulation, so the historical single-threaded behaviour is
  // unchanged, and SeedPool workers start with a silent bus (publish()
  // early-outs on active()).
  thread_local EventBus bus;
  return bus;
}

EventBus::Token EventBus::subscribe(Handler handler) {
  const Token token = next_token_++;
  handlers_.emplace_back(token, std::move(handler));
  return token;
}

void EventBus::unsubscribe(Token token) {
  handlers_.erase(
      std::remove_if(handlers_.begin(), handlers_.end(),
                     [token](const auto& h) { return h.first == token; }),
      handlers_.end());
}

void EventBus::publish(const Event& ev) const {
  for (const auto& [token, handler] : handlers_) handler(ev);
}

}  // namespace vcmr::obs
