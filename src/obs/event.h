#pragma once
// vcmr::obs — structured event bus.
//
// Discrete, timestamped happenings with an actor and a free-form detail:
// a client entering backoff, the scheduler resending a lost result, a fault
// injection firing. Unlike metrics (aggregates), events keep ordering and
// identity, so exporters can render them as instants on per-actor tracks in
// the Chrome trace.
//
// Pay-for-what-you-touch: with no subscriber, publish() is an empty-vector
// check and the Event is never even constructed (instrumentation sites call
// the free publish() helper, which early-outs on !active() before touching
// any of its string arguments beyond pass-by-reference). Subscribers are
// installed only by exporter-enabled runs and tests, via
// ScopedEventSubscription / EventLog so they cannot leak across tests.
//
// Thread contract: instance() returns a *thread-local* bus. The historical
// implementation was one process-wide bus whose subscriber vector was
// mutated without synchronization — a latent data race once sweeps run
// seeds on worker threads. Per-thread buses remove the race without locks
// on the publish hot path: a subscription only ever sees events published
// from its own thread (which is also what the exporters want — each worker
// runs a whole simulation), and ScopedEventSubscription must be destroyed
// on the thread that created it. Pinned by Events.BusIsThreadLocal.

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace vcmr::obs {

struct Event {
  SimTime at;
  std::string component;  ///< emitting subsystem, e.g. "scheduler"
  std::string name;       ///< event kind, e.g. "resend_lost"
  std::string actor;      ///< timeline it belongs to, e.g. "host3"
  std::string detail;     ///< free-form payload, e.g. the result name
};

class EventBus {
 public:
  using Handler = std::function<void(const Event&)>;
  using Token = std::uint64_t;

  static EventBus& instance();

  Token subscribe(Handler handler);
  void unsubscribe(Token token);

  /// True when at least one subscriber is installed; the publish fast path.
  bool active() const { return !handlers_.empty(); }

  void publish(const Event& ev) const;

 private:
  std::vector<std::pair<Token, Handler>> handlers_;
  Token next_token_ = 1;
};

/// Instrumentation-site helper: no-op (beyond the active() check) when
/// nobody is listening.
inline void publish(SimTime at, const std::string& component,
                    const std::string& name, const std::string& actor,
                    const std::string& detail = "") {
  EventBus& bus = EventBus::instance();
  if (!bus.active()) return;
  bus.publish(Event{at, component, name, actor, detail});
}

/// RAII subscription: unsubscribes on scope exit.
class ScopedEventSubscription {
 public:
  explicit ScopedEventSubscription(EventBus::Handler handler)
      : token_(EventBus::instance().subscribe(std::move(handler))) {}
  ~ScopedEventSubscription() { EventBus::instance().unsubscribe(token_); }

  ScopedEventSubscription(const ScopedEventSubscription&) = delete;
  ScopedEventSubscription& operator=(const ScopedEventSubscription&) = delete;

 private:
  EventBus::Token token_;
};

/// Buffers every published event for the lifetime of the object; the
/// trace exporter drains it to render obs events alongside sim spans.
class EventLog {
 public:
  EventLog()
      : sub_([this](const Event& ev) { events_.push_back(ev); }) {}

  const std::vector<Event>& events() const { return events_; }

 private:
  // Declared before sub_ so the subscription is torn down first.
  std::vector<Event> events_;
  ScopedEventSubscription sub_;
};

}  // namespace vcmr::obs
