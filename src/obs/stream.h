#pragma once
// vcmr::obs — streaming (during-run) telemetry exporter.
//
// `--metrics-json` renders only after a run exits, so a long sweep is a
// black box until it finishes. MetricsStreamer arms a periodic sampling
// event on the *simulation* clock and appends one JSON-lines row per tick:
// sim time, wall time, events executed, events/sec, peak RSS, caller
// probes (live values such as ready-queue depth), and a snapshot of every
// registry counter/gauge plus histogram count/sum/p50/p95/p99. Each row is
// flushed as it is written, so a killed or wedged run still leaves a
// readable time series up to its last tick.
//
// Pay-for-what-you-touch: constructing a streamer schedules sampling
// events (they count in events_executed()), but sampling makes no RNG draw
// and sends no wire bytes, so run *outcomes* — makespans, byte counts,
// golden traces — are identical with and without a stream (pinned in
// tests/test_stream.cpp). No streamer, no sampling events at all.
//
// With Options::counter_tracks the streamer also buffers CounterSamples,
// which chrome_trace_json renders as "ph":"C" counter tracks so Perfetto
// shows wire bytes, in-flight results, and queue depths over time.

#include <chrono>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "sim/simulation.h"

namespace vcmr::obs {

/// One sampled value for a Chrome-trace "ph":"C" counter track.
struct CounterSample {
  SimTime at;
  std::string name;  ///< track name, e.g. "scheduler/wire_bytes_out"
  double value = 0;
};

/// Renders one sample row from explicit inputs (deterministic; the schema
/// pin in tests feeds fixed values). MetricsStreamer supplies live ones.
std::string stream_sample_json(
    const MetricsRegistry& registry, double sim_s, double wall_s,
    std::int64_t events_executed, double events_per_sec,
    std::int64_t peak_rss_bytes,
    const std::vector<std::pair<std::string, double>>& probes);

class MetricsStreamer {
 public:
  struct Options {
    /// Simulated time between samples. The first row lands one period in;
    /// finish() adds a final row at the current clock.
    SimTime period = SimTime::seconds(60);
    /// Also buffer counter_samples() for the Chrome-trace exporter.
    bool counter_tracks = false;
    /// Registry counter families (component, name) sampled into counter
    /// tracks, summed across label sets. Probes are always tracked.
    std::vector<std::pair<std::string, std::string>> track_counters = {
        {"scheduler", "wire_bytes_in"},
        {"scheduler", "wire_bytes_out"},
        {"scheduler", "results_dispatched"},
    };
  };

  /// Samples MetricsRegistry::instance() at each tick and appends rows to
  /// `out` (caller owns the stream; it must outlive the streamer).
  MetricsStreamer(sim::Simulation& sim, std::ostream& out, Options opt);
  MetricsStreamer(sim::Simulation& sim, std::ostream& out);
  ~MetricsStreamer() = default;

  MetricsStreamer(const MetricsStreamer&) = delete;
  MetricsStreamer& operator=(const MetricsStreamer&) = delete;

  /// Registers a live value rendered in each row's "probes" object (and as
  /// a counter track). Call before the first tick fires.
  void add_probe(std::string name, std::function<double()> fn);

  /// Emits one final row at the current sim time and stops sampling.
  /// Call after the run settles so end-of-run roll-ups are included;
  /// idempotent. A streamer that is destroyed without finish() (the
  /// "killed run" case) leaves the rows flushed so far.
  void finish();

  /// Rows written so far (ticks plus the finish() row).
  std::int64_t samples() const { return samples_; }
  const std::vector<CounterSample>& counter_samples() const {
    return counter_samples_;
  }

 private:
  void sample();

  sim::Simulation& sim_;
  std::ostream& out_;
  Options opt_;
  std::vector<std::pair<std::string, std::function<double()>>> probes_;
  std::vector<CounterSample> counter_samples_;
  std::chrono::steady_clock::time_point wall_start_;
  double last_wall_s_ = 0;
  std::int64_t last_events_ = 0;
  std::int64_t samples_ = 0;
  bool finished_ = false;
  sim::PeriodicTask task_;  // last: its callback touches the members above
};

}  // namespace vcmr::obs
