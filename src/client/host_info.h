#pragma once
// Host hardware models.
//
// The paper's testbed mixes two Emulab node types (§IV.A): pc3001
// (Dell PowerEdge 2850, 3 GHz Pentium 4 Xeon, 1 GB RAM) and pcr200
// (Dell PowerEdge R200, quad-core Xeon X3220, 8 GB). The flops figures
// below are *effective* rates for byte-crunching MapReduce work (word
// count is memory/IO bound, nowhere near peak FP throughput), sized so a
// 50 MB word-count map task lands in the tens of seconds as on the paper's
// hardware.

#include <string>

#include "common/types.h"

namespace vcmr::client {

struct HostSpec {
  std::string type_name = "generic";
  double flops = 1.0e9;  ///< effective ops/s for task-duration modelling
  int cores = 1;         ///< concurrently running tasks
  double up_bps = 100e6 / 8;    ///< access link, bytes/s (Emulab: 100 Mbit)
  double down_bps = 100e6 / 8;
  SimTime latency = SimTime::millis(1);  ///< testbed LAN; Internet ~20-50ms
};

/// Dell PowerEdge 2850 — 3 GHz Pentium 4 Xeon.
inline HostSpec pc3001() {
  HostSpec s;
  s.type_name = "pc3001";
  s.flops = 0.9e9;
  s.cores = 1;
  return s;
}

/// Dell PowerEdge R200 — quad-core Xeon X3220 (2.4 GHz).
inline HostSpec pcr200() {
  HostSpec s;
  s.type_name = "pcr200";
  s.flops = 1.8e9;  // per-core; BOINC projects of the era ran 1 task/host
  s.cores = 1;
  return s;
}

/// A broadband volunteer PC (for Internet-scale scenarios): asymmetric
/// last-mile link and WAN latency.
inline HostSpec broadband_volunteer() {
  HostSpec s;
  s.type_name = "broadband";
  s.flops = 1.5e9;
  s.cores = 1;
  s.down_bps = 16e6 / 8;
  s.up_bps = 2e6 / 8;
  s.latency = SimTime::millis(25);
  return s;
}

}  // namespace vcmr::client
