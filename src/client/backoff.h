#pragma once
// Exponential backoff, as BOINC clients apply between scheduler RPCs when
// the server has no work (§IV.B: "To avoid server congestion, BOINC uses
// exponential backoff, which means that for several minutes, a client does
// not attempt to contact the server, not even to report a finished
// computation" — with the paper observing the 600 s cap).

#include "common/rng.h"
#include "common/types.h"

namespace vcmr::client {

class ExponentialBackoff {
 public:
  /// Jitter draws the delay uniformly from [(1-jitter)·d, d].
  ExponentialBackoff(SimTime min_delay, SimTime max_delay, common::Rng rng,
                     double jitter = 0.3)
      : min_(min_delay), max_(max_delay), rng_(rng), jitter_(jitter) {}

  /// Next delay; escalates the failure count until the cap is reached.
  SimTime next() {
    double d = min_.as_seconds();
    for (int i = 0; i < failures_ && d < max_.as_seconds(); ++i) d *= 2.0;
    const bool capped = d >= max_.as_seconds();
    d = std::min(d, max_.as_seconds());
    // Once the doubled delay hits the cap, further failures cannot raise
    // it, so stop escalating: the counter stays bounded on multi-day runs
    // instead of growing (and eventually overflowing) once per backoff.
    if (!capped) ++failures_;
    const double jittered = d * rng_.uniform(1.0 - jitter_, 1.0);
    return SimTime::seconds(std::max(jittered, min_.as_seconds() * (1.0 - jitter_)));
  }

  /// Call when the server produced work again.
  void reset() { failures_ = 0; }

  int failures() const { return failures_; }
  SimTime max_delay() const { return max_; }

 private:
  SimTime min_;
  SimTime max_;
  common::Rng rng_;
  double jitter_;
  int failures_ = 0;
};

}  // namespace vcmr::client
