#include "client/interclient.h"

#include "common/error.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace vcmr::client {

namespace {
common::Logger log_("interclient");

obs::Counter& ic_counter(const char* name) {
  return obs::MetricsRegistry::instance().counter("interclient", name);
}
}

// --- PeerRegistry -------------------------------------------------------------

void PeerRegistry::add(net::Endpoint ep, MapOutputServer* server) {
  require(server != nullptr, "PeerRegistry::add: null server");
  servers_[ep] = server;
}

void PeerRegistry::remove(net::Endpoint ep) { servers_.erase(ep); }

MapOutputServer* PeerRegistry::find(net::Endpoint ep) const {
  const auto it = servers_.find(ep);
  return it == servers_.end() ? nullptr : it->second;
}

// --- MapOutputServer -----------------------------------------------------------

MapOutputServer::MapOutputServer(sim::Simulation& sim, net::Network& net,
                                 NodeId node, net::Endpoint endpoint,
                                 PeerRegistry& registry,
                                 MapOutputServerConfig cfg)
    : sim_(sim),
      net_(net),
      node_(node),
      ep_(endpoint),
      registry_(registry),
      cfg_(cfg) {}

MapOutputServer::~MapOutputServer() { withdraw_all(); }

void MapOutputServer::offer(const std::string& name, mr::FilePayload payload) {
  if (!registered_) {
    registry_.add(ep_, this);
    registered_ = true;
  }
  Entry& e = files_[name];
  sim_.cancel(e.timeout);
  e.payload = std::move(payload);
  arm_timeout(name, SimTime::zero());
}

void MapOutputServer::arm_timeout(const std::string& name, SimTime horizon) {
  Entry& e = files_.at(name);
  const SimTime window = std::max(cfg_.serve_timeout, horizon);
  e.timeout = sim_.after(window, [this, name] {
    log_.debug("serve timeout for ", name, "; withdrawing");
    withdraw(name);
  });
}

void MapOutputServer::reset_timeouts(SimTime horizon) {
  for (auto& [name, e] : files_) {
    sim_.cancel(e.timeout);
    arm_timeout(name, horizon);
  }
}

void MapOutputServer::withdraw(const std::string& name) {
  const auto it = files_.find(name);
  if (it == files_.end()) return;
  sim_.cancel(it->second.timeout);
  files_.erase(it);
  if (files_.empty() && registered_) {
    // "stop accepting connections when there are no more files available"
    registry_.remove(ep_);
    registered_ = false;
  }
}

std::vector<std::string> MapOutputServer::served_names() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [name, e] : files_) out.push_back(name);
  return out;
}

void MapOutputServer::withdraw_all() {
  while (!files_.empty()) withdraw(files_.begin()->first);
}

bool MapOutputServer::start_serving(
    NodeId requester, const std::string& name, std::optional<NodeId> relay,
    std::function<void(const mr::FilePayload&)> on_done,
    std::function<void(net::NetError)> on_fail) {
  const auto it = files_.find(name);
  if (it == files_.end()) {
    ++stats_.rejected_missing;
    ic_counter("serve_rejected_missing").add();
    return false;
  }
  if (active_ >= cfg_.max_connections) {
    ++stats_.rejected_busy;
    ic_counter("serve_rejected_busy").add();
    return false;
  }
  ++active_;
  // Activity resets the file's timeout.
  sim_.cancel(it->second.timeout);
  arm_timeout(name, SimTime::zero());

  const mr::FilePayload payload = it->second.payload;
  net::FlowSpec fs;
  fs.src = node_;
  fs.dst = requester;
  fs.bytes = payload.size;
  fs.priority = cfg_.background_priority ? net::FlowPriority::kBackground
                                         : net::FlowPriority::kForeground;
  fs.relay = relay;
  fs.on_complete = [this, payload, on_done = std::move(on_done)] {
    --active_;
    ++stats_.served;
    stats_.bytes_served += payload.size;
    ic_counter("files_served").add();
    ic_counter("bytes_served").add(payload.size);
    if (on_done) on_done(payload);
  };
  fs.on_fail = [this, on_fail = std::move(on_fail)](net::NetError err) {
    --active_;
    if (on_fail) on_fail(err);
  };
  net_.start_flow(std::move(fs));
  return true;
}

// --- PeerFetcher ------------------------------------------------------------------

PeerFetcher::PeerFetcher(sim::Simulation& sim, net::Network& net,
                         NodeId my_node, PeerRegistry& registry,
                         net::ConnectionEstablisher* establisher,
                         PeerFetchConfig cfg)
    : sim_(sim),
      net_(net),
      node_(my_node),
      registry_(registry),
      establisher_(establisher),
      cfg_(cfg) {}

void PeerFetcher::fetch(net::Endpoint ep, const std::string& name, Bytes size,
                        std::function<void(const mr::FilePayload&)> on_done,
                        std::function<void(std::string)> on_fail) {
  (void)size;
  attempt(ep, name, cfg_.max_attempts, std::move(on_done), std::move(on_fail));
}

void PeerFetcher::fetch_store(
    net::Endpoint ep, const std::string& name,
    std::function<void(const mr::FilePayload&)> on_done,
    std::function<void(std::string)> on_miss) {
  ++stats_.attempts;
  ic_counter("fetch_attempts").add();

  auto miss = [this, name, on_miss](const std::string& why) {
    ++stats_.store_misses;
    ic_counter("store_misses").add();
    log_.debug("store fetch of ", name, " missed (", why, ")");
    if (on_miss) on_miss(why);
  };

  auto transfer = [this, ep, name, on_done,
                   miss](std::optional<NodeId> relay) {
    MapOutputServer* server = registry_.find(ep);
    if (server == nullptr) {
      miss("no listener at " + ep.str());
      return;
    }
    if (relay) ++stats_.relayed;
    const bool accepted = server->start_serving(
        node_, name, relay,
        [this, on_done](const mr::FilePayload& p) {
          ++stats_.fetches_ok;
          stats_.bytes_fetched += p.size;
          ic_counter("fetch_ok").add();
          ic_counter("bytes_fetched").add(p.size);
          if (on_done) on_done(p);
        },
        [miss](net::NetError err) { miss(net::to_string(err)); });
    if (!accepted) miss("peer refused (busy or chunk withdrawn)");
  };

  if (establisher_ == nullptr) {
    // Even a dead probe costs a handshake RTT before it comes back empty.
    if (!net_.online(ep.node)) {
      sim_.after(net_.rtt(node_, ep.node), [miss] { miss("peer offline"); });
      return;
    }
    sim_.after(net_.rtt(node_, ep.node),
               [transfer] { transfer(std::nullopt); });
    return;
  }

  establisher_->establish(node_, ep.node,
                          [transfer, miss](net::ConnectResult r) {
                            if (!r.ok()) {
                              miss("connection establishment failed");
                              return;
                            }
                            transfer(r.relay);
                          });
}

void PeerFetcher::attempt(net::Endpoint ep, std::string name, int tries_left,
                          std::function<void(const mr::FilePayload&)> on_done,
                          std::function<void(std::string)> on_fail) {
  if (tries_left <= 0) {
    ++stats_.fetches_failed;
    ic_counter("fetch_failures").add();
    if (on_fail) on_fail("peer fetch attempts exhausted for " + name);
    return;
  }
  ++stats_.attempts;
  ic_counter("fetch_attempts").add();

  auto retry = [this, ep, name, tries_left, on_done,
                on_fail](const std::string& why) {
    log_.debug("peer fetch of ", name, " failed (", why, "); ",
               tries_left - 1, " attempts left");
    sim_.after(cfg_.retry_delay, [this, ep, name, tries_left, on_done,
                                  on_fail] {
      attempt(ep, name, tries_left - 1, on_done, on_fail);
    });
  };

  auto transfer = [this, ep, name, on_done,
                   retry](std::optional<NodeId> relay) {
    MapOutputServer* server = registry_.find(ep);
    if (server == nullptr) {
      retry("no listener at " + ep.str());
      return;
    }
    if (relay) ++stats_.relayed;
    const bool accepted = server->start_serving(
        node_, name, relay,
        [this, on_done](const mr::FilePayload& p) {
          ++stats_.fetches_ok;
          stats_.bytes_fetched += p.size;
          ic_counter("fetch_ok").add();
          ic_counter("bytes_fetched").add(p.size);
          if (on_done) on_done(p);
        },
        [retry](net::NetError err) { retry(net::to_string(err)); });
    if (!accepted) retry("peer refused (busy or file withdrawn)");
  };

  if (establisher_ == nullptr) {
    // Open-ports deployment: direct connection after one handshake RTT.
    if (!net_.online(ep.node)) {
      retry("peer offline");
      return;
    }
    sim_.after(net_.rtt(node_, ep.node),
               [transfer] { transfer(std::nullopt); });
    return;
  }

  establisher_->establish(node_, ep.node,
                          [transfer, retry](net::ConnectResult r) {
                            if (!r.ok()) {
                              retry("connection establishment failed");
                              return;
                            }
                            transfer(r.relay);
                          });
}

}  // namespace vcmr::client
