#pragma once
// Inter-client data transfer (§III.C) — the BOINC-MR client's new machinery.
//
// Serving side (MapOutputServer): "We open a TCP [socket] for listening to
// incoming connections whenever a map task has finished and its output(s)
// is available. We dynamically adapt to the number of files being served,
// and stop accepting connections when there are no more files available."
// Files expire after a serve timeout (reset on activity) or when the job
// finishes; a bounded number of concurrent connections protects the
// volunteer's uplink ("We kept a threshold for a maximum number of
// inter-client connections").
//
// Fetching side (PeerFetcher): establishes a connection to the mapper
// (optionally through the NAT-traversal tier ladder), transfers the file,
// and after n failed attempts reports failure so the client can fall back
// to the project server ("After n failed attempts, the user resorts to
// downloading the file from the server").

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "mr/dataset.h"
#include "net/endpoint.h"
#include "net/network.h"
#include "net/traversal.h"
#include "sim/simulation.h"

namespace vcmr::client {

class MapOutputServer;

/// Endpoint → serving client lookup; one per simulated cluster. Stands in
/// for actually dialling the IP:port the scheduler handed out.
class PeerRegistry {
 public:
  void add(net::Endpoint ep, MapOutputServer* server);
  void remove(net::Endpoint ep);
  /// nullptr when nobody listens there (client offline or withdrawn).
  MapOutputServer* find(net::Endpoint ep) const;

 private:
  std::map<net::Endpoint, MapOutputServer*> servers_;
};

struct MapOutputServerConfig {
  int max_connections = 4;
  SimTime serve_timeout = SimTime::minutes(60);
  /// Serve with background priority (TCP-Nice, §III.D): inter-client
  /// uploads yield to the volunteer's foreground traffic.
  bool background_priority = false;
};

struct ServeStats {
  std::int64_t served = 0;
  std::int64_t rejected_busy = 0;
  std::int64_t rejected_missing = 0;
  Bytes bytes_served = 0;
};

class MapOutputServer {
 public:
  MapOutputServer(sim::Simulation& sim, net::Network& net, NodeId node,
                  net::Endpoint endpoint, PeerRegistry& registry,
                  MapOutputServerConfig cfg = {});
  ~MapOutputServer();

  MapOutputServer(const MapOutputServer&) = delete;
  MapOutputServer& operator=(const MapOutputServer&) = delete;

  net::Endpoint endpoint() const { return ep_; }

  /// Makes a file available and (re)arms its timeout; registers the
  /// listener when this is the first file.
  void offer(const std::string& name, mr::FilePayload payload);
  /// Re-arms every timeout (the paper resets timeouts when the server
  /// reschedules a reduce task). `horizon` extends beyond the configured
  /// serve timeout when the next chance to re-arm is far away (a client in
  /// deep backoff re-arms to cover the whole silent window).
  void reset_timeouts(SimTime horizon = SimTime::zero());
  /// Stops serving one/all files (job finished).
  void withdraw(const std::string& name);
  void withdraw_all();

  bool serving() const { return !files_.empty(); }
  bool has(const std::string& name) const { return files_.count(name) > 0; }
  /// Names currently offered, lexicographic order.
  std::vector<std::string> served_names() const;
  int active_connections() const { return active_; }
  const ServeStats& stats() const { return stats_; }

  /// Peer-side entry point: transfer `name` to `requester`. Returns false
  /// (synchronously) when the file is gone or the connection limit is hit;
  /// otherwise callbacks fire when the flow ends.
  bool start_serving(NodeId requester, const std::string& name,
                     std::optional<NodeId> relay,
                     std::function<void(const mr::FilePayload&)> on_done,
                     std::function<void(net::NetError)> on_fail);

 private:
  void arm_timeout(const std::string& name, SimTime horizon);

  sim::Simulation& sim_;
  net::Network& net_;
  NodeId node_;
  net::Endpoint ep_;
  PeerRegistry& registry_;
  MapOutputServerConfig cfg_;
  struct Entry {
    mr::FilePayload payload;
    sim::EventHandle timeout;
  };
  std::map<std::string, Entry> files_;
  int active_ = 0;
  bool registered_ = false;
  ServeStats stats_;
};

struct PeerFetchConfig {
  int max_attempts = 3;                       ///< then fall back to server
  SimTime retry_delay = SimTime::seconds(5);
  net::FlowPriority priority = net::FlowPriority::kForeground;
};

struct PeerFetchStats {
  std::int64_t fetches_ok = 0;
  std::int64_t fetches_failed = 0;   ///< exhausted attempts
  std::int64_t attempts = 0;
  std::int64_t relayed = 0;
  std::int64_t store_misses = 0;     ///< single-probe store fetches that missed
  Bytes bytes_fetched = 0;
};

class PeerFetcher {
 public:
  /// `establisher` may be null: connections then succeed directly whenever
  /// the peer is online (the paper's "users open ports" deployment).
  PeerFetcher(sim::Simulation& sim, net::Network& net, NodeId my_node,
              PeerRegistry& registry, net::ConnectionEstablisher* establisher,
              PeerFetchConfig cfg = {});

  /// Fetches `name` (size `size`) from the peer at `ep`; retries up to
  /// max_attempts, then calls on_fail.
  void fetch(net::Endpoint ep, const std::string& name, Bytes size,
             std::function<void(const mr::FilePayload&)> on_done,
             std::function<void(std::string)> on_fail);

  /// Volunteer-store variant: one probe, no retries. A peer that matched a
  /// Bloom advert but cannot serve the chunk (false positive, withdrawn
  /// file, busy, offline) is a *miss*, reported via on_miss after at most a
  /// handshake RTT so the caller can redirect to its next source cheaply.
  void fetch_store(net::Endpoint ep, const std::string& name,
                   std::function<void(const mr::FilePayload&)> on_done,
                   std::function<void(std::string)> on_miss);

  const PeerFetchStats& stats() const { return stats_; }

 private:
  void attempt(net::Endpoint ep, std::string name, int tries_left,
               std::function<void(const mr::FilePayload&)> on_done,
               std::function<void(std::string)> on_fail);

  sim::Simulation& sim_;
  net::Network& net_;
  NodeId node_;
  PeerRegistry& registry_;
  net::ConnectionEstablisher* establisher_;
  PeerFetchConfig cfg_;
  PeerFetchStats stats_;
};

}  // namespace vcmr::client
