#pragma once
// The volunteer client: BOINC's pull-model state machine plus the BOINC-MR
// additions (§III.A/III.C).
//
// All communication is client-initiated. The client keeps a small work
// buffer; when it runs low it issues a scheduler RPC that simultaneously
// reports finished results and requests work. Finished outputs are
// *uploaded* as soon as they exist, but the result is only *reported* on
// the next scheduler RPC — and when the server had no work, that RPC is
// pushed out by exponential backoff. This pair of behaviours produces the
// straggler pathology of Fig. 4.
//
// A BOINC-MR client (mr_capable) additionally serves its validated map
// outputs to reducers over inter-client connections and fetches reduce
// inputs from mapper peers, falling back to the data server after n failed
// attempts.

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "client/backoff.h"
#include "client/host_info.h"
#include "client/interclient.h"
#include "db/schema.h"
#include "mr/app.h"
#include "mr/dataset.h"
#include "net/http.h"
#include "net/traversal.h"
#include "proto/messages.h"
#include "sim/simulation.h"
#include "sim/trace.h"
#include "store/store.h"

namespace vcmr::client {

/// Bucket bounds for the `client/backoff_seconds` histogram. The default
/// backoff cap is 600 s, but the cap is configurable (backoff_max), so the
/// bounds extend to an hour: observations above the last bound land in the
/// overflow bucket, whose quantile() clamps to that bound and silently
/// under-reports the tail (see obs::Histogram). Pinned in test_obs.cpp.
inline std::vector<double> backoff_histogram_bounds() {
  return {30, 60, 120, 240, 480, 600, 1200, 2400, 3600};
}

struct ClientConfig {
  bool mr_capable = false;   ///< BOINC-MR build vs plain 6.13.0 client

  // --- work fetch --------------------------------------------------------
  /// Ask for work when the buffered estimate falls below this.
  double work_buf_min_seconds = 600;
  /// Stagger of the very first scheduler contact.
  SimTime initial_rpc_jitter = SimTime::seconds(20);
  /// Checkpoint cadence: a suspension (churn) loses progress made since the
  /// last checkpoint. Zero = continuous checkpointing.
  SimTime checkpoint_period = SimTime::seconds(60);

  // --- backoff (paper: 600 s cap observed) ---------------------------------
  SimTime backoff_min = SimTime::seconds(60);
  SimTime backoff_max = SimTime::seconds(600);
  double backoff_jitter = 0.3;

  // --- transfers -----------------------------------------------------------
  int max_file_xfers = 4;           ///< libcurl-style concurrent transfers
  int transfer_retries = 6;         ///< server-transfer attempts per file
  SimTime transfer_retry_delay = SimTime::seconds(10);

  // --- reporting -------------------------------------------------------------
  /// Mitigation E4 client side; the server can also switch this on via the
  /// reply flag.
  bool report_results_immediately = false;

  // --- BOINC-MR ---------------------------------------------------------------
  int mr_port = 31416;
  /// Upload map outputs to the server as well (must match the project's
  /// mirror_map_outputs; enables plain clients and the fetch fallback).
  bool mirror_map_outputs = true;
  /// Serve/fetch tuning.
  MapOutputServerConfig serve;
  PeerFetchConfig peer_fetch;

  // --- byzantine model ----------------------------------------------------------
  /// Probability that a finished task reports a corrupted digest.
  double error_probability = 0.0;
  /// Credit-claim inflation factor (1.0 = honest; cheaters claim more, the
  /// validator's min-of-quorum grant clips them).
  double credit_claim_inflation = 1.0;

  /// E15 client side: serve downloaded map inputs to other volunteers and
  /// advertise them in scheduler RPCs (matches the project's
  /// peer_input_distribution).
  bool cache_inputs = false;

  // --- fast lost-work recovery (matches the project-side gates) ---------------
  /// Attach the list of results this client still holds to every scheduler
  /// request so the scheduler can reconcile (resend_lost_results). Off by
  /// default: the extra fields change RPC sizes.
  bool report_known_results = false;
  /// Report exhausted peer fetches `(job, map_index, holder)` on the next
  /// scheduler RPC (report_fetch_failures).
  bool report_fetch_failures = false;

  // --- volunteer replica store (matches the project's volunteer_store) --------
  /// When enabled, every scheduler RPC advertises the files this client can
  /// serve as a Bloom filter (geometry below), downloaded map input chunks
  /// are offered to the inter-client server, and assigned tasks walk their
  /// peer list — volunteer serve points first, project shard as the final
  /// fallback — treating a store miss as a cheap redirect.
  store::VolunteerStoreConfig volunteer_store;
};

struct ClientStats {
  std::int64_t rpcs = 0;
  std::int64_t rpc_failures = 0;
  std::int64_t tasks_received = 0;
  std::int64_t tasks_completed = 0;
  std::int64_t tasks_failed = 0;
  std::int64_t results_reported = 0;
  std::int64_t backoffs = 0;
  std::int64_t server_fallbacks = 0;  ///< peer fetch → server fallback
  std::int64_t store_fetches = 0;     ///< chunks served by volunteer peers
  std::int64_t store_misses = 0;      ///< Bloom false positives / lost chunks
  Bytes bytes_downloaded_store = 0;   ///< chunk bytes from volunteer peers
  Bytes bytes_downloaded_server = 0;
  Bytes bytes_uploaded_server = 0;
  Bytes bytes_read_locally = 0;  ///< reduce inputs already on local disk
};

class Client {
 public:
  Client(sim::Simulation& sim, net::Network& net, net::HttpService& http,
         store::StorageTier& data, net::Endpoint scheduler_ep,
         const db::HostRecord& host_rec, const HostSpec& spec,
         PeerRegistry& registry, net::ConnectionEstablisher* establisher,
         ClientConfig cfg = {}, sim::TraceRecorder* trace = nullptr);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Schedules the first scheduler contact.
  void start();

  /// Availability hook for the churn model; offline pauses execution
  /// (checkpoint-style), fails in-flight transfers, and silences RPCs.
  void set_online(bool online);
  bool online() const { return online_; }

  /// Fault injection: the client process dies. Unlike set_online(false),
  /// nothing survives — in-flight tasks, downloaded inputs, and the map
  /// outputs this host was serving are all lost, so reducers must re-fetch
  /// (or fall back) and the server re-issues the host's results when their
  /// report deadlines pass.
  void crash();
  /// Recovers from crash(): comes back empty-handed and re-contacts the
  /// scheduler as a fresh work fetch.
  void restart();
  bool crashed() const { return crashed_; }

  /// Fault injection: when set, consulted once per finished task; returning
  /// true corrupts the reported digest and staged outputs (exercising the
  /// quorum validator exactly like a byzantine host).
  void set_upload_corruption_hook(std::function<bool()> hook) {
    corrupt_hook_ = std::move(hook);
  }

  HostId host_id() const { return host_id_; }
  NodeId node() const { return node_; }
  const ClientStats& stats() const { return stats_; }
  const PeerFetchStats& peer_stats() const { return fetcher_.stats(); }
  const ServeStats& serve_stats() const { return serve_.stats(); }
  bool idle() const;
  std::size_t tasks_in_hand() const { return tasks_.size(); }

 private:
  enum class TaskState {
    kDownloading,
    kReady,
    kRunning,
    kUploading,
    kReadyToReport,
    kReporting,
  };

  struct TaskInput {
    proto::InputFileSpec spec;
    bool have = false;
    bool active = false;  ///< a fetch is in flight
    int server_retries_left = 0;
    bool use_server = false;  ///< forced fallback
    /// Next entry of spec.peers to try; with the volunteer store enabled a
    /// failed source redirects here instead of straight to the server.
    int next_peer = 0;
  };

  struct Task {
    proto::AssignedTask assign;
    TaskState state = TaskState::kDownloading;
    std::vector<TaskInput> inputs;
    SimTime received;
    SimTime run_started;
    SimTime run_remaining;  ///< for checkpoint/resume under churn
    sim::EventHandle run_event;
    std::size_t compute_span = 0;
    bool report_success = true;
    double flops_actual = 0;  ///< real work done; basis of the credit claim
    common::Digest128 digest;
    Bytes output_bytes = 0;
    std::vector<proto::OutputFileInfo> outputs;
    std::vector<std::pair<std::string, mr::FilePayload>> pending_uploads;
    int uploads_in_flight = 0;
  };

  // --- RPC ----------------------------------------------------------------
  void consider_rpc();
  void do_rpc();
  void on_reply(const proto::SchedulerReply& reply, bool requested_work,
                std::vector<std::int64_t> reported_ids);
  void on_rpc_fail(std::vector<std::int64_t> reported_ids,
                   std::vector<proto::FetchFailureReport> sent_fetch_failures);
  bool want_work() const;
  bool want_report_now() const;
  /// Pipelined reduce: a held task still needs mapper locations, which
  /// only arrive with scheduler replies — so keep polling.
  bool want_locations() const;
  double buffered_seconds() const;

  // --- tasks ----------------------------------------------------------------
  void accept_task(const proto::AssignedTask& assign);
  void apply_location_update(const proto::LocationUpdate& upd);
  void pump_downloads();
  void start_input_fetch(Task& task, TaskInput& input);
  /// The in-flight download of `name` failed for good (or its task died):
  /// waiters re-enter the queue so one of them becomes the new carrier.
  void requeue_input_waiters(const std::string& name);
  void input_done(std::int64_t result_id, const std::string& name,
                  const mr::FilePayload& payload);
  void input_failed(std::int64_t result_id, const std::string& name,
                    const std::string& why, bool was_peer);
  void check_ready(Task& task);
  void maybe_execute();
  void start_execution(Task& task);
  void finish_execution(Task& task);
  void start_uploads(Task& task);
  void pump_uploads(Task& task);
  void upload_output(std::int64_t result_id, const std::string& name,
                     mr::FilePayload payload);
  void mark_ready_to_report(Task& task);
  void fail_task(Task& task, const std::string& why);
  Task* find_task(std::int64_t result_id);

  const mr::MapReduceApp& app_for(const Task& task) const;

  void trace_point(const std::string& label, const std::string& detail);
  std::size_t trace_begin(const std::string& label, const std::string& detail);
  void trace_end(std::size_t token);

  /// Telemetry for a freshly drawn backoff delay: per-host histogram plus a
  /// "backoff" event when an exporter is listening.
  void note_backoff(SimTime delay, const char* why);

  sim::Simulation& sim_;
  net::Network& net_;
  net::HttpService& http_;
  store::StorageTier& data_;
  net::Endpoint scheduler_ep_;
  HostId host_id_;
  NodeId node_;
  HostSpec spec_;
  ClientConfig cfg_;
  sim::TraceRecorder* trace_;
  std::string actor_;

  MapOutputServer serve_;
  PeerFetcher fetcher_;
  ExponentialBackoff backoff_;
  common::Rng byz_rng_;

  bool online_ = true;
  bool started_ = false;
  bool crashed_ = false;
  bool rpc_in_flight_ = false;
  /// Bumped by crash(): replies to RPCs issued in an earlier life are stale
  /// and must be ignored even if the network still delivers them.
  std::int64_t rpc_epoch_ = 0;
  std::function<bool()> corrupt_hook_;
  bool server_wants_immediate_reports_ = false;
  SimTime next_allowed_rpc_;
  SimTime backoff_until_;
  sim::EventHandle rpc_event_;
  std::optional<std::size_t> backoff_span_;

  std::map<std::int64_t, Task> tasks_;  ///< by result id; ordered for determinism
  std::deque<std::pair<std::int64_t, std::string>> download_queue_;
  /// Transfer dedup (BOINC's file model: results reference shared files, so
  /// two tasks needing the same input share one transfer): file name → the
  /// result ids waiting on another task's in-flight download of that file.
  /// Satisfied from local disk when the carrier lands; re-queued as normal
  /// downloads if the carrier fails for good.
  std::map<std::string, std::vector<std::int64_t>> input_waiters_;
  int downloads_active_ = 0;
  int running_count_ = 0;  ///< tasks executing now (≤ spec_.cores)
  std::map<std::string, mr::FilePayload> local_files_;
  std::vector<std::string> cached_input_names_;  ///< advertised in RPCs
  /// Exhausted peer fetches awaiting delivery to the scheduler; entries
  /// re-queue if the carrying RPC fails and die with everything else on
  /// crash().
  std::vector<proto::FetchFailureReport> pending_fetch_failures_;

  ClientStats stats_;
};

}  // namespace vcmr::client
