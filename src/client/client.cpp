#include "client/client.h"

#include <algorithm>
#include <cmath>

#include "common/bloom.h"
#include "common/error.h"
#include "common/logging.h"
#include "common/strings.h"
#include "mr/task.h"
#include "obs/event.h"
#include "obs/metrics.h"
#include "server/jobtracker.h"

namespace vcmr::client {

namespace {
common::Logger log_("client");
}

Client::Client(sim::Simulation& sim, net::Network& net, net::HttpService& http,
               store::StorageTier& data, net::Endpoint scheduler_ep,
               const db::HostRecord& host_rec, const HostSpec& spec,
               PeerRegistry& registry, net::ConnectionEstablisher* establisher,
               ClientConfig cfg, sim::TraceRecorder* trace)
    : sim_(sim),
      net_(net),
      http_(http),
      data_(data),
      scheduler_ep_(scheduler_ep),
      host_id_(host_rec.id),
      node_(host_rec.node),
      spec_(spec),
      cfg_(cfg),
      trace_(trace),
      actor_(host_rec.name),
      serve_(sim, net, host_rec.node, host_rec.mr_endpoint, registry,
             cfg.serve),
      fetcher_(sim, net, host_rec.node, registry, establisher, cfg.peer_fetch),
      backoff_(cfg.backoff_min, cfg.backoff_max,
               sim.rng_stream("client.backoff",
                              static_cast<std::uint64_t>(host_rec.id.value())),
               cfg.backoff_jitter),
      byz_rng_(sim.rng_stream("client.byzantine",
                              static_cast<std::uint64_t>(host_rec.id.value()))) {
  mr::register_builtin_apps();
}

Client::~Client() {
  sim_.cancel(rpc_event_);
  for (auto& [id, t] : tasks_) sim_.cancel(t.run_event);
}

void Client::start() {
  require(!started_, "Client::start called twice");
  started_ = true;
  // Stagger first contact: volunteers do not all dial in at t=0.
  const double frac =
      sim_.rng_stream("client.start",
                      static_cast<std::uint64_t>(host_id_.value()))
          .uniform();
  next_allowed_rpc_ = SimTime::seconds(cfg_.initial_rpc_jitter.as_seconds() * frac);
  consider_rpc();
}

// --- trace helpers --------------------------------------------------------

void Client::trace_point(const std::string& label, const std::string& detail) {
  if (trace_) trace_->point(sim_.now(), actor_, label, detail);
}
std::size_t Client::trace_begin(const std::string& label,
                                const std::string& detail) {
  return trace_ ? trace_->begin_span(sim_.now(), actor_, label, detail) : 0;
}
void Client::trace_end(std::size_t token) {
  if (trace_) trace_->end_span(token, sim_.now());
}

void Client::note_backoff(SimTime delay, const char* why) {
  obs::MetricsRegistry::instance()
      .histogram("client", "backoff_seconds", backoff_histogram_bounds(),
                 {{"host", actor_}})
      .observe(delay.as_seconds());
  if (obs::EventBus::instance().active()) {
    obs::publish(sim_.now(), "client", "backoff", actor_,
                 common::strprintf("%s %.3f", why, delay.as_seconds()));
  }
}

// --- RPC -----------------------------------------------------------------

bool Client::want_work() const {
  return buffered_seconds() < cfg_.work_buf_min_seconds;
}

bool Client::want_locations() const {
  for (const auto& [id, t] : tasks_) {
    if (t.state == TaskState::kDownloading && !t.assign.inputs_complete) {
      return true;
    }
  }
  return false;
}

bool Client::want_report_now() const {
  bool any_ready = false;
  bool any_ready_map = false;
  for (const auto& [id, t] : tasks_) {
    if (t.state == TaskState::kReadyToReport) {
      any_ready = true;
      if (t.assign.phase == proto::TaskPhase::kMap) any_ready_map = true;
    }
  }
  if (!any_ready) return false;
  if (cfg_.report_results_immediately) return true;
  return server_wants_immediate_reports_ && any_ready_map;
}

double Client::buffered_seconds() const {
  double total = 0;
  for (const auto& [id, t] : tasks_) {
    if (t.state == TaskState::kDownloading || t.state == TaskState::kReady ||
        t.state == TaskState::kRunning) {
      total += t.assign.flops_estimate / spec_.flops;
    }
  }
  return total;
}

void Client::consider_rpc() {
  if (!online_ || rpc_in_flight_ || !started_) return;
  const bool report_now = want_report_now();
  const bool work = want_work() || want_locations();
  if (!report_now && !work) {
    sim_.cancel(rpc_event_);
    rpc_event_ = sim::EventHandle{};
    return;
  }
  SimTime t = std::max(sim_.now(), next_allowed_rpc_);
  // Immediate reporting (mitigation E4) bypasses the backoff window; an
  // ordinary work-fetch does not (§IV.B).
  if (!report_now) t = std::max(t, backoff_until_);
  sim_.cancel(rpc_event_);
  rpc_event_ = sim_.at(t, [this] { do_rpc(); });
}

void Client::do_rpc() {
  if (!online_ || rpc_in_flight_) return;
  if (backoff_span_) {
    trace_end(*backoff_span_);
    backoff_span_.reset();
  }

  proto::SchedulerRequest req;
  req.host_id = host_id_.value();
  req.mr_capable = cfg_.mr_capable;
  req.serving_endpoint = serve_.endpoint();
  if (cfg_.cache_inputs) req.cached_files = cached_input_names_;
  if (cfg_.volunteer_store.enabled && cfg_.mr_capable) {
    // Volunteer replica store: advertise everything we can serve as a Bloom
    // filter. Serving nothing sends no filter at all, which tells the
    // scheduler to drop our directory entry (e.g. after a crash).
    const std::vector<std::string> names = serve_.served_names();
    if (!names.empty()) {
      common::BloomFilter filter(cfg_.volunteer_store.filter_bits,
                                 cfg_.volunteer_store.filter_hashes);
      for (const std::string& n : names) filter.add(n);
      req.store_filter = filter.serialize();
    }
  }
  int queued = 0;
  for (const auto& [id, t] : tasks_) {
    if (t.state == TaskState::kDownloading || t.state == TaskState::kReady ||
        t.state == TaskState::kRunning) {
      ++queued;
    }
  }
  req.tasks_queued = queued;
  req.remaining_work_seconds = buffered_seconds();
  const bool requesting = want_work() || want_locations();
  if (requesting) {
    req.work_request_seconds =
        std::max(60.0, cfg_.work_buf_min_seconds - buffered_seconds());
  }

  std::vector<std::int64_t> reported_ids;
  for (auto& [id, t] : tasks_) {
    if (t.state != TaskState::kReadyToReport) continue;
    t.state = TaskState::kReporting;
    proto::ReportedResult rep;
    rep.result_id = id;
    rep.name = t.assign.result_name;
    rep.success = t.report_success;
    rep.digest = t.digest;
    rep.output_bytes = t.output_bytes;
    // BOINC's cobblestone-style claim: normalized work done.
    rep.claimed_credit =
        t.flops_actual / 1e9 * cfg_.credit_claim_inflation;
    rep.outputs = t.outputs;
    req.reports.push_back(std::move(rep));
    reported_ids.push_back(id);
    trace_point("report", t.assign.result_name);
  }

  if (cfg_.report_known_results) {
    // Fast lost-work recovery: tell the scheduler every result this client
    // still holds (any state). After a crash the list is empty, so the
    // scheduler can re-issue the wiped work at this very RPC.
    req.knows_results = true;
    for (const auto& [id, t] : tasks_) req.known_results.push_back(id);
  }
  std::vector<proto::FetchFailureReport> sent_fetch_failures;
  if (cfg_.report_fetch_failures && !pending_fetch_failures_.empty()) {
    sent_fetch_failures = std::move(pending_fetch_failures_);
    pending_fetch_failures_.clear();
    req.failed_fetches = sent_fetch_failures;
  }

  rpc_in_flight_ = true;
  ++stats_.rpcs;
  obs::MetricsRegistry::instance().counter("client", "rpcs").add();
  if (requesting) {
    obs::MetricsRegistry::instance()
        .counter("client", "work_fetch_requests")
        .add();
  }

  net::HttpRequest hreq;
  hreq.method = "POST";
  hreq.path = "/scheduler";
  hreq.body = proto::to_xml(req);
  hreq.body_size = static_cast<Bytes>(hreq.body.size());
  const std::int64_t epoch = rpc_epoch_;
  http_.request(
      node_, scheduler_ep_, std::move(hreq),
      [this, requesting, reported_ids, sent_fetch_failures,
       epoch](const net::HttpResponse& resp) {
        if (epoch != rpc_epoch_) return;  // reply from before a crash
        if (!resp.ok()) {
          on_rpc_fail(reported_ids, sent_fetch_failures);
          return;
        }
        on_reply(proto::reply_from_xml(resp.body), requesting, reported_ids);
      },
      [this, reported_ids, sent_fetch_failures, epoch](net::NetError) {
        if (epoch != rpc_epoch_) return;
        on_rpc_fail(reported_ids, sent_fetch_failures);
      });
}

void Client::on_rpc_fail(
    std::vector<std::int64_t> reported_ids,
    std::vector<proto::FetchFailureReport> sent_fetch_failures) {
  rpc_in_flight_ = false;
  ++stats_.rpc_failures;
  obs::MetricsRegistry::instance().counter("client", "rpc_failures").add();
  // Reports were not delivered; queue them again.
  for (const std::int64_t id : reported_ids) {
    if (Task* t = find_task(id)) {
      if (t->state == TaskState::kReporting) t->state = TaskState::kReadyToReport;
    }
  }
  for (const auto& ff : sent_fetch_failures) {
    if (std::find(pending_fetch_failures_.begin(),
                  pending_fetch_failures_.end(),
                  ff) == pending_fetch_failures_.end()) {
      pending_fetch_failures_.push_back(ff);
    }
  }
  const SimTime delay = backoff_.next();
  backoff_until_ = sim_.now() + delay;
  ++stats_.backoffs;
  note_backoff(delay, "rpc_fail");
  consider_rpc();
}

void Client::on_reply(const proto::SchedulerReply& reply, bool requested_work,
                      std::vector<std::int64_t> reported_ids) {
  rpc_in_flight_ = false;
  next_allowed_rpc_ = sim_.now() + reply.request_delay;
  server_wants_immediate_reports_ = reply.report_map_results_immediately;
  if (reply.keep_serving) {
    // §III.C: reduce work referencing our outputs is still in flight;
    // re-arm the serve timeouts so the files stay available. The window
    // must outlive our silence: the next chance to re-arm is the next
    // scheduler reply, which backoff can push out by up to backoff_max.
    serve_.reset_timeouts(cfg_.backoff_max + SimTime::minutes(2));
  } else if (cfg_.mr_capable && serve_.serving()) {
    // Nothing unfinished references our map outputs: stop serving them
    // ("This happens when the MapReduce job has finished"). Cached input
    // seeds (E15) stay up for other replicas and expire by timeout.
    for (const std::string& name : serve_.served_names()) {
      if (std::find(cached_input_names_.begin(), cached_input_names_.end(),
                    name) == cached_input_names_.end()) {
        serve_.withdraw(name);
      }
    }
  }

  for (const std::int64_t id : reported_ids) {
    const auto it = tasks_.find(id);
    if (it != tasks_.end() && it->second.state == TaskState::kReporting) {
      ++stats_.results_reported;
      tasks_.erase(it);
    }
  }

  for (const auto& upd : reply.location_updates) apply_location_update(upd);
  for (const auto& assign : reply.tasks) accept_task(assign);

  if (requested_work) {
    if (reply.tasks.empty()) {
      const SimTime delay = backoff_.next();
      backoff_until_ = sim_.now() + delay;
      ++stats_.backoffs;
      note_backoff(delay, "empty_reply");
      backoff_span_ = trace_begin("backoff", "");
    } else {
      backoff_.reset();
      backoff_until_ = SimTime::zero();
    }
  }

  pump_downloads();
  maybe_execute();
  consider_rpc();
}

// --- task intake -----------------------------------------------------------

void Client::accept_task(const proto::AssignedTask& assign) {
  ++stats_.tasks_received;
  obs::MetricsRegistry::instance().counter("client", "tasks_received").add();
  trace_point("assign", assign.result_name);

  Task t;
  t.assign = assign;
  t.received = sim_.now();
  for (const auto& spec : assign.inputs) {
    TaskInput in;
    in.spec = spec;
    in.server_retries_left = cfg_.transfer_retries;
    t.inputs.push_back(std::move(in));
  }
  const std::int64_t id = assign.result_id;
  auto [it, inserted] = tasks_.emplace(id, std::move(t));
  if (!inserted) return;  // duplicate assignment; keep the original

  for (const auto& in : it->second.inputs) {
    download_queue_.emplace_back(id, in.spec.name);
  }
  pump_downloads();
  check_ready(it->second);
}

void Client::apply_location_update(const proto::LocationUpdate& upd) {
  Task* t = find_task(upd.result_id);
  if (t == nullptr || t->state != TaskState::kDownloading) return;
  for (const auto& peer : upd.peers) {
    const bool known =
        std::any_of(t->inputs.begin(), t->inputs.end(),
                    [&](const TaskInput& in) { return in.spec.name == peer.file_name; });
    if (known) continue;
    TaskInput in;
    in.spec.name = peer.file_name;
    in.spec.size = peer.size;
    in.spec.on_server = peer.on_server;
    in.spec.peers.push_back(peer);
    in.server_retries_left = cfg_.transfer_retries;
    t->inputs.push_back(std::move(in));
    download_queue_.emplace_back(upd.result_id, peer.file_name);
  }
  if (upd.complete) t->assign.inputs_complete = true;
  pump_downloads();
  check_ready(*t);
}

// --- downloads ----------------------------------------------------------------

void Client::pump_downloads() {
  if (!online_) return;
  while (downloads_active_ < cfg_.max_file_xfers && !download_queue_.empty()) {
    const auto [id, name] = download_queue_.front();
    download_queue_.pop_front();
    Task* t = find_task(id);
    if (t == nullptr || t->state != TaskState::kDownloading) continue;
    const auto it =
        std::find_if(t->inputs.begin(), t->inputs.end(),
                     [&](const TaskInput& in) { return in.spec.name == name; });
    if (it == t->inputs.end() || it->have || it->active) continue;
    start_input_fetch(*t, *it);
  }
}

void Client::start_input_fetch(Task& task, TaskInput& input) {
  // The file may already be local: this host produced it as a mapper, or a
  // re-assigned task shares inputs. Local disk reads cost no network.
  const auto cached = local_files_.find(input.spec.name);
  if (cached != local_files_.end()) {
    input.have = true;
    stats_.bytes_read_locally += cached->second.size;
    trace_point("local_read", input.spec.name);
    check_ready(task);
    return;
  }

  // Another task may already be fetching this very file (parameter sweeps
  // share one input chunk across every map). BOINC's file model dedups
  // this — results reference per-project files, so concurrent references
  // share one transfer — and so do we: park this input as a waiter instead
  // of opening a duplicate flow that would double both our link load and
  // the serve point's connection pressure.
  for (const auto& [other_id, other] : tasks_) {
    if (other_id == task.assign.result_id) continue;
    for (const TaskInput& oin : other.inputs) {
      if (oin.spec.name == input.spec.name && oin.active) {
        input_waiters_[input.spec.name].push_back(task.assign.result_id);
        return;
      }
    }
  }

  const std::int64_t id = task.assign.result_id;
  const std::string name = input.spec.name;
  input.active = true;
  ++downloads_active_;
  const std::size_t span = trace_begin("download", name);

  const bool via_peer =
      cfg_.mr_capable && !input.use_server &&
      input.next_peer < static_cast<int>(input.spec.peers.size());
  if (via_peer) {
    const proto::PeerLocation& loc =
        input.spec.peers[static_cast<std::size_t>(input.next_peer)];
    if (loc.from_store) {
      // Volunteer serve point: the Bloom advert may have been a false
      // positive, so probe once and treat any failure as a cheap miss —
      // input_failed redirects to the next source.
      fetcher_.fetch_store(
          loc.endpoint, name,
          [this, id, name, span](const mr::FilePayload& p) {
            trace_end(span);
            ++stats_.store_fetches;
            obs::MetricsRegistry::instance()
                .counter("client", "store_fetches")
                .add();
            stats_.bytes_downloaded_store += p.size;
            obs::MetricsRegistry::instance()
                .counter("store", "tier_egress_bytes", {{"tier", "volunteer"}})
                .add(p.size);
            input_done(id, name, p);
          },
          [this, id, name, span](const std::string& why) {
            trace_end(span);
            input_failed(id, name, why, /*was_peer=*/true);
          });
      return;
    }
    fetcher_.fetch(
        loc.endpoint, name, loc.size,
        [this, id, name, span](const mr::FilePayload& p) {
          trace_end(span);
          input_done(id, name, p);
        },
        [this, id, name, span](const std::string& why) {
          trace_end(span);
          input_failed(id, name, why, /*was_peer=*/true);
        });
    return;
  }

  if (!input.spec.on_server) {
    // No usable source: plain client facing peer-only data.
    trace_end(span);
    input.active = false;
    --downloads_active_;
    fail_task(task, "no reachable source for " + name);
    return;
  }

  data_.download(
      node_, name,
      [this, id, name, span](const mr::FilePayload& p) {
        trace_end(span);
        stats_.bytes_downloaded_server += p.size;
        input_done(id, name, p);
      },
      [this, id, name, span](const std::string& why) {
        trace_end(span);
        input_failed(id, name, why, /*was_peer=*/false);
      });
}

void Client::input_done(std::int64_t result_id, const std::string& name,
                        const mr::FilePayload& payload) {
  --downloads_active_;
  local_files_[name] = payload;
  if ((cfg_.cache_inputs || cfg_.volunteer_store.enabled) && cfg_.mr_capable) {
    Task* t = find_task(result_id);
    if (t != nullptr && t->assign.phase == proto::TaskPhase::kMap) {
      // E15 / volunteer store: become a serve point for this input chunk.
      // cached_input_names_ doubles as the withdraw-on-reply exemption list,
      // so store-offered chunks survive a keep_serving=false reply too.
      serve_.offer(name, payload);
      if (std::find(cached_input_names_.begin(), cached_input_names_.end(),
                    name) == cached_input_names_.end()) {
        cached_input_names_.push_back(name);
      }
    }
  }
  Task* t = find_task(result_id);
  if (t != nullptr) {
    const auto it =
        std::find_if(t->inputs.begin(), t->inputs.end(),
                     [&](const TaskInput& in) { return in.spec.name == name; });
    if (it != t->inputs.end()) {
      it->active = false;
      it->have = true;
    }
    check_ready(*t);
  }
  // Tasks parked on this transfer read the now-local copy.
  if (const auto w = input_waiters_.find(name); w != input_waiters_.end()) {
    const std::vector<std::int64_t> waiters = std::move(w->second);
    input_waiters_.erase(w);
    for (const std::int64_t wid : waiters) {
      Task* wt = find_task(wid);
      if (wt == nullptr) continue;
      const auto wit = std::find_if(
          wt->inputs.begin(), wt->inputs.end(),
          [&](const TaskInput& in) { return in.spec.name == name; });
      if (wit == wt->inputs.end() || wit->have) continue;
      wit->have = true;
      stats_.bytes_read_locally += payload.size;
      trace_point("local_read", name);
      check_ready(*wt);
    }
  }
  pump_downloads();
}

void Client::requeue_input_waiters(const std::string& name) {
  const auto w = input_waiters_.find(name);
  if (w == input_waiters_.end()) return;
  const std::vector<std::int64_t> waiters = std::move(w->second);
  input_waiters_.erase(w);
  for (const std::int64_t wid : waiters) {
    Task* wt = find_task(wid);
    if (wt != nullptr && wt->state == TaskState::kDownloading)
      download_queue_.emplace_back(wid, name);
  }
}

void Client::input_failed(std::int64_t result_id, const std::string& name,
                          const std::string& why, bool was_peer) {
  --downloads_active_;
  Task* t = find_task(result_id);
  if (t == nullptr || t->state != TaskState::kDownloading) {
    // The carrier task died mid-transfer; any waiters must fetch themselves.
    requeue_input_waiters(name);
    pump_downloads();
    return;
  }
  const auto it =
      std::find_if(t->inputs.begin(), t->inputs.end(),
                   [&](const TaskInput& in) { return in.spec.name == name; });
  if (it == t->inputs.end()) {
    pump_downloads();
    return;
  }
  it->active = false;

  if (was_peer) {
    const std::size_t peer_idx = static_cast<std::size_t>(it->next_peer);
    const bool from_store =
        peer_idx < it->spec.peers.size() && it->spec.peers[peer_idx].from_store;
    if (from_store) {
      // A volunteer serve point missed: Bloom false positive, chunk
      // withdrawn, or peer gone. That is a cheap redirect, never a holder
      // failure — the reduce-side failed_fetch machinery stays out of it.
      ++stats_.store_misses;
      obs::MetricsRegistry::instance().counter("client", "store_misses").add();
      trace_point("store_miss", name);
    } else if (cfg_.report_fetch_failures && !it->spec.peers.empty() &&
               t->assign.phase == proto::TaskPhase::kReduce) {
      // The holder is unreachable after all retries: queue a report so the
      // jobtracker can invalidate its locations and re-run the map early.
      // Every other still-missing input registered to the same holder is
      // doomed to the same fate, so report them all in one batch instead
      // of discovering them serially, one failed reduce attempt each.
      const std::int64_t holder = it->spec.peers.front().holder_host;
      for (const TaskInput& in : t->inputs) {
        if (in.have || in.spec.peers.empty()) continue;
        const proto::PeerLocation& loc = in.spec.peers.front();
        if (loc.holder_host != holder) continue;
        proto::FetchFailureReport ff;
        ff.job_id = t->assign.job_id;
        ff.map_index = loc.map_index;
        ff.holder_host = loc.holder_host;
        if (std::find(pending_fetch_failures_.begin(),
                      pending_fetch_failures_.end(),
                      ff) == pending_fetch_failures_.end()) {
          pending_fetch_failures_.push_back(ff);
          trace_point("fetch_failure", in.spec.name);
        }
      }
    }
    ++it->next_peer;
    if (cfg_.volunteer_store.enabled &&
        it->next_peer < static_cast<int>(it->spec.peers.size())) {
      // More advertised sources remain: redirect to the next one.
      download_queue_.emplace_back(result_id, name);
    } else if (it->spec.on_server) {
      // §III.C fallback: after n failed attempts, fetch from the server.
      log_.debug(actor_, ": falling back to server for ", name, " (", why, ")");
      ++stats_.server_fallbacks;
      obs::MetricsRegistry::instance()
          .counter("client", "server_fallbacks")
          .add();
      it->use_server = true;
      download_queue_.emplace_back(result_id, name);
    } else {
      fail_task(*t, "peer fetch failed with no server mirror: " + why);
      requeue_input_waiters(name);
    }
  } else {
    if (--it->server_retries_left > 0) {
      const std::int64_t id = result_id;
      sim_.after(cfg_.transfer_retry_delay, [this, id, name] {
        if (Task* task = find_task(id); task != nullptr &&
            task->state == TaskState::kDownloading) {
          download_queue_.emplace_back(id, name);
          pump_downloads();
        }
      });
    } else {
      fail_task(*t, "server transfer failed: " + why);
      requeue_input_waiters(name);
    }
  }
  pump_downloads();
}

void Client::check_ready(Task& task) {
  if (task.state != TaskState::kDownloading) return;
  if (!task.assign.inputs_complete) return;
  if (task.assign.phase == proto::TaskPhase::kReduce &&
      static_cast<int>(task.inputs.size()) < task.assign.n_maps) {
    return;  // pipelined mode: more inputs still unknown
  }
  for (const auto& in : task.inputs) {
    if (!in.have) return;
  }
  task.state = TaskState::kReady;
  maybe_execute();
}

// --- execution --------------------------------------------------------------

const mr::MapReduceApp& Client::app_for(const Task& task) const {
  const mr::MapReduceApp* app =
      mr::AppRegistry::instance().find(task.assign.app);
  require(app != nullptr, "client: unknown app in assignment");
  return *app;
}

void Client::maybe_execute() {
  // Fill every free core (BOINC runs one task per CPU).
  while (online_ && running_count_ < spec_.cores) {
    Task* next = nullptr;
    for (auto& [id, t] : tasks_) {
      if (t.state != TaskState::kReady) continue;
      if (next == nullptr || t.received < next->received) next = &t;
    }
    if (next == nullptr) return;
    start_execution(*next);
  }
}

void Client::start_execution(Task& t) {
  t.state = TaskState::kRunning;
  ++running_count_;
  const mr::MapReduceApp& app = app_for(t);

  double flops = 0;
  if (t.assign.phase == proto::TaskPhase::kReduce) {
    // Inputs sorted by map index: replicas must concatenate identically.
    std::vector<const TaskInput*> order;
    for (const auto& in : t.inputs) order.push_back(&in);
    std::sort(order.begin(), order.end(),
              [](const TaskInput* a, const TaskInput* b) {
                const int ma = a->spec.peers.empty() ? 0 : a->spec.peers[0].map_index;
                const int mb = b->spec.peers.empty() ? 0 : b->spec.peers[0].map_index;
                if (ma != mb) return ma < mb;
                return a->spec.name < b->spec.name;
              });
    std::vector<mr::FilePayload> inputs;
    for (const TaskInput* in : order) {
      inputs.push_back(local_files_.at(in->spec.name));
    }
    const mr::ReduceTaskResult r =
        mr::run_reduce_task(app, inputs, t.assign.wu_name);
    flops = r.flops;
    t.digest = r.digest;
    t.output_bytes = r.output.size;
    const std::string out_name =
        server::JobTracker::reduce_output_name(t.assign.result_name);
    proto::OutputFileInfo info;
    info.name = out_name;
    info.size = r.output.size;
    info.digest = r.output.digest;
    t.outputs.push_back(info);
    t.pending_uploads.emplace_back(out_name, r.output);
  } else {
    // Map (and plain) tasks read their single staged input.
    require(!t.inputs.empty(), "map task with no input");
    const mr::FilePayload& chunk = local_files_.at(t.inputs[0].spec.name);
    const mr::MapTaskResult r = mr::run_map_task(
        app, chunk, std::max(1, t.assign.n_reducers), t.assign.wu_name);
    flops = r.flops;
    t.digest = r.digest;
    for (int p = 0; p < static_cast<int>(r.partitions.size()); ++p) {
      const mr::FilePayload& part = r.partitions[static_cast<std::size_t>(p)];
      const std::string out_name =
          server::JobTracker::map_output_name(t.assign.result_name, p);
      proto::OutputFileInfo info;
      info.name = out_name;
      info.size = part.size;
      info.digest = part.digest;
      info.reduce_partition = p;
      t.outputs.push_back(info);
      t.output_bytes += part.size;
      t.pending_uploads.emplace_back(out_name, part);
    }
  }

  t.flops_actual = flops;
  const double duration_s = flops / spec_.flops;
  t.run_started = sim_.now();
  t.run_remaining = SimTime::seconds(duration_s);
  t.compute_span = trace_begin("compute", t.assign.result_name);
  const std::int64_t id = t.assign.result_id;
  t.run_event = sim_.after(t.run_remaining, [this, id] {
    if (Task* task = find_task(id)) finish_execution(*task);
  });
}

void Client::finish_execution(Task& task) {
  trace_end(task.compute_span);
  --running_count_;
  ++stats_.tasks_completed;
  obs::MetricsRegistry::instance().counter("client", "tasks_completed").add();

  // Byzantine model: a faulty/malicious client reports a corrupted digest
  // (the quorum validator is what catches this, §III.B).
  if (cfg_.error_probability > 0 && byz_rng_.chance(cfg_.error_probability)) {
    task.digest.lo ^= byz_rng_.next_u64() | 1;
    for (auto& [name, payload] : task.pending_uploads) {
      (void)name;
      payload.digest.lo ^= 1;
    }
    for (auto& out : task.outputs) out.digest.lo ^= 1;
  }

  // Fault injection: an injected upload corruption looks exactly like a
  // faulty host to the server. The flip is keyed by host id so two
  // corrupted replicas of one work unit can never agree into a quorum.
  if (corrupt_hook_ && corrupt_hook_()) {
    task.digest.lo ^=
        (0x9e3779b97f4a7c15ull *
         (static_cast<std::uint64_t>(host_id_.value()) + 2)) | 1ull;
    for (auto& [name, payload] : task.pending_uploads) {
      (void)name;
      payload.digest.lo ^= 1;
    }
    for (auto& out : task.outputs) out.digest.lo ^= 1;
  }

  // Outputs now exist on this client's disk; a later reduce task assigned
  // here reads them locally instead of fetching (data locality).
  for (const auto& [name, payload] : task.pending_uploads) {
    local_files_[name] = payload;
  }

  // BOINC-MR: serve map outputs to reducers from this client.
  if (cfg_.mr_capable && task.assign.phase == proto::TaskPhase::kMap) {
    for (const auto& [name, payload] : task.pending_uploads) {
      serve_.offer(name, payload);
    }
  }

  start_uploads(task);
  maybe_execute();
}

void Client::start_uploads(Task& task) {
  task.state = TaskState::kUploading;

  const bool skip_server_upload = cfg_.mr_capable &&
                                  task.assign.phase == proto::TaskPhase::kMap &&
                                  !cfg_.mirror_map_outputs;
  if (skip_server_upload || task.pending_uploads.empty()) {
    // BOINC-MR without mirroring reports digests only (§III.B: "map
    // outputs should not be uploaded to the server; instead, each
    // output's hash would be reported back").
    mark_ready_to_report(task);
    return;
  }

  for (auto& out : task.outputs) out.uploaded = true;
  task.uploads_in_flight = static_cast<int>(task.pending_uploads.size());
  pump_uploads(task);
}

void Client::pump_uploads(Task& task) {
  // Start every pending upload; the flow network arbitrates bandwidth the
  // way libcurl's parallel transfers would.
  auto uploads = std::move(task.pending_uploads);
  task.pending_uploads.clear();
  const std::int64_t id = task.assign.result_id;
  for (auto& [name, payload] : uploads) {
    upload_output(id, name, std::move(payload));
  }
}

void Client::upload_output(std::int64_t result_id, const std::string& name,
                           mr::FilePayload payload) {
  if (!online_) {
    // Parked until set_online(true) re-pumps the task's uploads.
    if (Task* t = find_task(result_id)) {
      t->pending_uploads.emplace_back(name, std::move(payload));
    }
    return;
  }
  const std::size_t span = trace_begin("upload", name);
  const Bytes size = payload.size;
  // Copy before the call: `payload` is moved into the failure lambda below,
  // and argument evaluation order is unspecified.
  mr::FilePayload to_send = payload;
  data_.upload(
      node_, name, std::move(to_send),
      [this, result_id, span, size] {
        trace_end(span);
        stats_.bytes_uploaded_server += size;
        if (Task* t = find_task(result_id)) {
          if (--t->uploads_in_flight == 0) mark_ready_to_report(*t);
        }
      },
      [this, result_id, span, name,
       payload = std::move(payload)](const std::string& why) mutable {
        trace_end(span);
        log_.debug(actor_, ": upload of ", name, " failed (", why,
                   "); retrying");
        sim_.after(cfg_.transfer_retry_delay,
                   [this, result_id, name,
                    payload = std::move(payload)]() mutable {
                     if (find_task(result_id) != nullptr) {
                       upload_output(result_id, name, std::move(payload));
                     }
                   });
      });
}

void Client::mark_ready_to_report(Task& task) {
  task.state = TaskState::kReadyToReport;
  trace_point("uploaded", task.assign.result_name);
  consider_rpc();
}

void Client::fail_task(Task& task, const std::string& why) {
  if (task.state == TaskState::kReadyToReport ||
      task.state == TaskState::kReporting) {
    return;
  }
  log_.warn(actor_, ": task ", task.assign.result_name, " failed: ", why);
  ++stats_.tasks_failed;
  obs::MetricsRegistry::instance().counter("client", "tasks_failed").add();
  obs::publish(sim_.now(), "client", "task_failed", actor_, why);
  task.report_success = false;
  task.outputs.clear();
  task.pending_uploads.clear();
  task.state = TaskState::kReadyToReport;
  consider_rpc();
}

Client::Task* Client::find_task(std::int64_t result_id) {
  const auto it = tasks_.find(result_id);
  return it == tasks_.end() ? nullptr : &it->second;
}

// --- availability -------------------------------------------------------------

void Client::set_online(bool online) {
  if (online_ == online) return;
  online_ = online;
  net_.set_online(node_, online);
  if (!online) {
    sim_.cancel(rpc_event_);
    rpc_event_ = sim::EventHandle{};
    for (auto& [id, t] : tasks_) {
      if (t.state != TaskState::kRunning) continue;
      // Suspension rolls the task back to its last checkpoint: progress
      // made since then is lost (BOINC apps checkpoint periodically).
      sim_.cancel(t.run_event);
      SimTime done = sim_.now() - t.run_started;
      const double ckpt = cfg_.checkpoint_period.as_seconds();
      if (ckpt > 0) {
        const double kept =
            std::floor(done.as_seconds() / ckpt) * ckpt;
        done = SimTime::seconds(kept);
      }
      t.run_remaining = std::max(SimTime::zero(), t.run_remaining - done);
      trace_end(t.compute_span);
    }
    trace_point("offline", "");
    return;
  }
  trace_point("online", "");
  for (auto& [id, t] : tasks_) {
    if (t.state != TaskState::kRunning) continue;
    t.run_started = sim_.now();
    t.compute_span = trace_begin("compute", t.assign.result_name);
    const std::int64_t rid = id;
    t.run_event = sim_.after(t.run_remaining, [this, rid] {
      if (Task* task = find_task(rid)) finish_execution(*task);
    });
  }
  // Re-arm interrupted downloads and uploads.
  for (auto& [id, t] : tasks_) {
    if (t.state == TaskState::kDownloading) {
      for (auto& in : t.inputs) {
        if (!in.have && !in.active) download_queue_.emplace_back(id, in.spec.name);
      }
    }
    if (t.state == TaskState::kUploading && !t.pending_uploads.empty()) {
      pump_uploads(t);
    }
  }
  pump_downloads();
  maybe_execute();
  consider_rpc();
}

// --- crash/restart (fault injection) ---------------------------------------

void Client::crash() {
  if (crashed_) return;
  crashed_ = true;
  ++rpc_epoch_;  // any reply to an in-flight RPC is now stale
  rpc_in_flight_ = false;
  sim_.cancel(rpc_event_);
  rpc_event_ = sim::EventHandle{};
  for (auto& [id, t] : tasks_) {
    sim_.cancel(t.run_event);
    if (t.state == TaskState::kRunning) trace_end(t.compute_span);
  }
  // Everything on disk and in memory is gone. In-flight transfer callbacks
  // find no task and fizzle; downloads_active_ drains through them, so it
  // is deliberately not reset here.
  tasks_.clear();
  download_queue_.clear();
  input_waiters_.clear();
  running_count_ = 0;
  local_files_.clear();
  cached_input_names_.clear();
  pending_fetch_failures_.clear();
  serve_.withdraw_all();
  backoff_.reset();
  backoff_until_ = SimTime::zero();
  if (online_) {
    online_ = false;
    net_.set_online(node_, false);
  }
  log_.info(actor_, ": crashed at t=", sim_.now().str());
  obs::MetricsRegistry::instance().counter("client", "crashes").add();
  obs::publish(sim_.now(), "client", "crash", actor_);
  trace_point("crash", "");
}

void Client::restart() {
  if (!crashed_) return;
  crashed_ = false;
  online_ = true;
  net_.set_online(node_, true);
  next_allowed_rpc_ = sim_.now();
  log_.info(actor_, ": restarted at t=", sim_.now().str());
  obs::publish(sim_.now(), "client", "restart", actor_);
  trace_point("restart", "");
  consider_rpc();
}

bool Client::idle() const { return tasks_.empty() && !rpc_in_flight_; }

}  // namespace vcmr::client
