#pragma once
// Single-task execution: what one volunteer does with one map or reduce
// work unit. Shared by the simulated BOINC clients and offline tools.
//
// Tasks run in one of two modes, decided by the input payloads:
//  * materialised — real bytes in, real bytes out; digests are content
//    digests, so replicas agree iff they computed the same thing.
//  * modelled — only sizes flow; output sizes come from the app's
//    CostModel and digests are derived deterministically from the task
//    tag, so honest replicas still agree and byzantine hosts can still
//    disagree (they corrupt the digest).

#include <string>
#include <string_view>
#include <vector>

#include "mr/app.h"
#include "mr/dataset.h"

namespace vcmr::mr {

struct MapTaskResult {
  /// One output per reduce partition, index = partition id.
  std::vector<FilePayload> partitions;
  /// Digest over all partition outputs in partition order (what the client
  /// reports to the server for quorum validation).
  common::Digest128 digest;
  /// Work performed; duration on a host = flops / host_flops.
  double flops = 0.0;
};

struct ReduceTaskResult {
  FilePayload output;
  common::Digest128 digest;
  double flops = 0.0;
};

/// Executes a map task over one input chunk, partitioning intermediate
/// records into `n_reducers` buckets. `task_tag` must be unique per
/// (job, map index) — it seeds modelled-mode digests.
MapTaskResult run_map_task(const MapReduceApp& app, const FilePayload& input,
                           int n_reducers, std::string_view task_tag,
                           bool use_combiner = true);

/// Executes a reduce task over the map outputs for one partition.
ReduceTaskResult run_reduce_task(const MapReduceApp& app,
                                 const std::vector<FilePayload>& inputs,
                                 std::string_view task_tag);

}  // namespace vcmr::mr
