#pragma once
// In-process multithreaded MapReduce runtime.
//
// Runs a job on real data with a worker-thread pool: split → parallel map
// (with combiner) → shuffle by partition → parallel reduce → merged,
// key-sorted output. It serves two purposes: a usable local engine for the
// example programs, and the *correctness oracle* the integration tests
// compare simulated cluster executions against — any execution path must
// produce exactly this output.

#include <string>
#include <vector>

#include "common/types.h"
#include "mr/app.h"
#include "mr/keyvalue.h"

namespace vcmr::mr {

struct LocalJobOptions {
  int n_maps = 4;
  int n_reducers = 2;
  int n_threads = 4;        ///< worker threads; 1 = sequential
  bool use_combiner = true;
};

struct LocalJobResult {
  /// Final records from all reducers merged and sorted by key.
  std::vector<KeyValue> output;
  /// Raw serialized output of each reducer (index = partition).
  std::vector<std::string> reduce_outputs;
  Bytes input_bytes = 0;
  Bytes intermediate_bytes = 0;  ///< total map-output volume (shuffle size)
  Bytes output_bytes = 0;
};

/// Executes `app` over `input`; throws on invalid options.
LocalJobResult run_local(const MapReduceApp& app, const std::string& input,
                         const LocalJobOptions& options = {});

}  // namespace vcmr::mr
