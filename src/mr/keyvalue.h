#pragma once
// Key/value records and their wire format.
//
// The paper's word-count app writes one line per record, "key value"
// (e.g. "test 1", §IV.A); reducers parse lines back. These helpers
// implement that line format plus grouped iteration for the reduce side.

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace vcmr::mr {

struct KeyValue {
  std::string key;
  std::string value;

  friend auto operator<=>(const KeyValue&, const KeyValue&) = default;
};

/// "key value\n" for each record. Keys must not contain whitespace (the
/// word-count tokenizer guarantees that); values may.
std::string serialize_kvs(const std::vector<KeyValue>& kvs);

/// Parses the line format back; malformed lines (no separator) are skipped,
/// matching the lenient readers MapReduce apps typically use.
std::vector<KeyValue> parse_kvs(std::string_view payload);

/// Groups records by key, preserving per-key value order; keys sorted.
std::map<std::string, std::vector<std::string>> group_by_key(
    const std::vector<KeyValue>& kvs);

}  // namespace vcmr::mr
