#include "mr/local_runtime.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <thread>

#include "common/error.h"
#include "mr/dataset.h"
#include "mr/task.h"

namespace vcmr::mr {

namespace {

/// Runs `count` independent tasks on up to `n_threads` workers. Tasks are
/// claimed via an atomic cursor; each task writes only its own output slot,
/// so no further synchronisation is needed.
void parallel_for(int count, int n_threads, const std::function<void(int)>& fn) {
  require(n_threads >= 1, "parallel_for: need at least one thread");
  if (n_threads == 1 || count <= 1) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<int> cursor{0};
  auto worker = [&] {
    for (;;) {
      const int i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      fn(i);
    }
  };
  const int spawn = std::min(n_threads, count);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(spawn));
  for (int t = 0; t < spawn; ++t) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
}

}  // namespace

LocalJobResult run_local(const MapReduceApp& app, const std::string& input,
                         const LocalJobOptions& options) {
  require(options.n_maps >= 1, "run_local: need at least one map");
  require(options.n_reducers >= 1, "run_local: need at least one reducer");

  LocalJobResult res;
  res.input_bytes = static_cast<Bytes>(input.size());

  // Split. Chunks carry the "#chunk i" header added by split_text.
  const std::vector<std::string> chunks = split_text(input, options.n_maps);

  // Map phase: each task fills its own slot of the shuffle matrix.
  std::vector<MapTaskResult> map_results(
      static_cast<std::size_t>(options.n_maps));
  parallel_for(options.n_maps, options.n_threads, [&](int m) {
    const FilePayload chunk =
        FilePayload::of_content(chunks[static_cast<std::size_t>(m)]);
    map_results[static_cast<std::size_t>(m)] =
        run_map_task(app, chunk, options.n_reducers,
                     "local_map_" + std::to_string(m), options.use_combiner);
  });
  for (const auto& mr : map_results) {
    for (const auto& p : mr.partitions) res.intermediate_bytes += p.size;
  }

  // Reduce phase: partition r consumes bucket r of every map.
  res.reduce_outputs.resize(static_cast<std::size_t>(options.n_reducers));
  parallel_for(options.n_reducers, options.n_threads, [&](int r) {
    std::vector<FilePayload> inputs;
    inputs.reserve(static_cast<std::size_t>(options.n_maps));
    for (const auto& mr : map_results) {
      inputs.push_back(mr.partitions[static_cast<std::size_t>(r)]);
    }
    const ReduceTaskResult rr =
        run_reduce_task(app, inputs, "local_reduce_" + std::to_string(r));
    res.reduce_outputs[static_cast<std::size_t>(r)] = *rr.output.content;
  });

  // Merge: reducers emit disjoint key sets, so a sort after concatenation
  // gives the canonical global output.
  for (const auto& out : res.reduce_outputs) {
    res.output_bytes += static_cast<Bytes>(out.size());
    auto kvs = parse_kvs(out);
    res.output.insert(res.output.end(), std::make_move_iterator(kvs.begin()),
                      std::make_move_iterator(kvs.end()));
  }
  std::sort(res.output.begin(), res.output.end());
  return res;
}

}  // namespace vcmr::mr
