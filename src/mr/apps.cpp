#include "mr/apps.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "common/bloom.h"
#include "common/strings.h"

namespace vcmr::mr {

namespace {

/// Calls fn(word) for each maximal alphanumeric run, lowercased.
template <class Fn>
void for_each_word(std::string_view chunk, Fn&& fn) {
  std::string word;
  for (const char c : chunk) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      word += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!word.empty()) {
      fn(word);
      word.clear();
    }
  }
  if (!word.empty()) fn(word);
}

/// Strips the optional "#chunk <id>\n" header; returns (id, body).
std::pair<std::int64_t, std::string_view> split_chunk_header(
    std::string_view chunk) {
  constexpr std::string_view kTag = "#chunk ";
  if (chunk.substr(0, kTag.size()) != kTag) return {0, chunk};
  const std::size_t eol = chunk.find('\n');
  if (eol == std::string_view::npos) return {0, chunk};
  std::int64_t id = 0;
  if (!common::parse_i64(chunk.substr(kTag.size(), eol - kTag.size()), &id)) {
    return {0, chunk};
  }
  return {id, chunk.substr(eol + 1)};
}

std::int64_t sum_values(const std::vector<std::string>& values) {
  std::int64_t total = 0;
  for (const auto& v : values) {
    std::int64_t n = 0;
    if (common::parse_i64(v, &n)) total += n;
  }
  return total;
}

}  // namespace

// --- word_count --------------------------------------------------------------

void WordCountApp::map(std::string_view chunk, Emitter& out) const {
  const auto [id, body] = split_chunk_header(chunk);
  (void)id;
  for_each_word(body, [&out](const std::string& w) { out.emit(w, "1"); });
}

void WordCountApp::reduce(const std::string& key,
                          const std::vector<std::string>& values,
                          Emitter& out) const {
  out.emit(key, std::to_string(sum_values(values)));
}

bool WordCountApp::combine(const std::string& key,
                           const std::vector<std::string>& values,
                           Emitter& out) const {
  out.emit(key, std::to_string(sum_values(values)));
  return true;
}

CostModel WordCountApp::cost() const {
  CostModel c;
  c.map_flops_per_byte = 30.0;      // tokenize + hash per byte
  c.reduce_flops_per_byte = 15.0;   // parse + accumulate
  c.map_output_ratio = 1.15;        // "word 1\n" per word
  c.reduce_output_ratio = 0.02;     // unique words only
  return c;
}

// --- grep ---------------------------------------------------------------------

void GrepApp::map(std::string_view chunk, Emitter& out) const {
  const auto [id, body] = split_chunk_header(chunk);
  (void)id;
  std::size_t pos = 0;
  std::int64_t matches = 0;
  while (pos < body.size()) {
    std::size_t eol = body.find('\n', pos);
    if (eol == std::string_view::npos) eol = body.size();
    const std::string_view line = body.substr(pos, eol - pos);
    if (line.find(pattern_) != std::string_view::npos) ++matches;
    pos = eol + 1;
  }
  if (matches > 0) out.emit(pattern_, std::to_string(matches));
}

void GrepApp::reduce(const std::string& key,
                     const std::vector<std::string>& values,
                     Emitter& out) const {
  out.emit(key, std::to_string(sum_values(values)));
}

CostModel GrepApp::cost() const {
  CostModel c;
  c.map_flops_per_byte = 8.0;       // substring scan
  c.reduce_flops_per_byte = 5.0;
  c.map_output_ratio = 0.0005;      // matches only (ParaMEDIC-style tiny output)
  c.reduce_output_ratio = 1.0;
  return c;
}

// --- inverted_index -------------------------------------------------------------

void InvertedIndexApp::map(std::string_view chunk, Emitter& out) const {
  const auto [id, body] = split_chunk_header(chunk);
  const std::string doc = std::to_string(id);
  std::set<std::string> seen;  // one posting per (word, chunk)
  for_each_word(body, [&](const std::string& w) {
    if (seen.insert(w).second) out.emit(w, doc);
  });
}

void InvertedIndexApp::reduce(const std::string& key,
                              const std::vector<std::string>& values,
                              Emitter& out) const {
  std::vector<std::int64_t> docs;
  docs.reserve(values.size());
  for (const auto& v : values) {
    std::int64_t d = 0;
    if (common::parse_i64(v, &d)) docs.push_back(d);
  }
  std::sort(docs.begin(), docs.end());
  docs.erase(std::unique(docs.begin(), docs.end()), docs.end());
  std::string posting;
  for (std::size_t i = 0; i < docs.size(); ++i) {
    if (i) posting += ',';
    posting += std::to_string(docs[i]);
  }
  out.emit(key, posting);
}

CostModel InvertedIndexApp::cost() const {
  CostModel c;
  c.map_flops_per_byte = 45.0;      // tokenize + dedup set
  c.reduce_flops_per_byte = 25.0;
  c.map_output_ratio = 0.25;        // unique words per chunk
  c.reduce_output_ratio = 0.6;
  return c;
}

// --- count_range ---------------------------------------------------------------

void CountRangeApp::map(std::string_view chunk, Emitter& out) const {
  const auto [id, body] = split_chunk_header(chunk);
  (void)id;
  // Input lines are word-count output: "word N".
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t eol = body.find('\n', pos);
    if (eol == std::string_view::npos) eol = body.size();
    const std::string_view line = body.substr(pos, eol - pos);
    pos = eol + 1;
    const std::size_t sep = line.find(' ');
    if (sep == std::string_view::npos) continue;
    std::int64_t n = 0;
    if (!common::parse_i64(line.substr(sep + 1), &n) || n <= 0) continue;
    // Decade bucket: 1-9, 10-99, 100-999, ...
    std::int64_t lo = 1;
    while (n >= lo * 10) lo *= 10;
    out.emit("occurs_" + std::to_string(lo) + "_" + std::to_string(lo * 10 - 1),
             "1");
  }
}

void CountRangeApp::reduce(const std::string& key,
                           const std::vector<std::string>& values,
                           Emitter& out) const {
  out.emit(key, std::to_string(sum_values(values)));
}

bool CountRangeApp::combine(const std::string& key,
                            const std::vector<std::string>& values,
                            Emitter& out) const {
  out.emit(key, std::to_string(sum_values(values)));
  return true;
}

CostModel CountRangeApp::cost() const {
  CostModel c;
  c.map_flops_per_byte = 12.0;
  c.reduce_flops_per_byte = 6.0;
  c.map_output_ratio = 0.9;
  c.reduce_output_ratio = 1e-4;  // a handful of buckets
  return c;
}

// --- grep_bloom ----------------------------------------------------------------

void GrepBloomApp::map(std::string_view chunk, Emitter& out) const {
  const auto [id, body] = split_chunk_header(chunk);
  (void)id;
  common::BloomFilter filter(filter_bits_, 4);
  bool any = false;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t eol = body.find('\n', pos);
    if (eol == std::string_view::npos) eol = body.size();
    const std::string_view line = body.substr(pos, eol - pos);
    if (line.find(pattern_) != std::string_view::npos) {
      filter.add(line);
      any = true;
    }
    pos = eol + 1;
  }
  if (any) out.emit("matches", filter.serialize());
}

void GrepBloomApp::reduce(const std::string& key,
                          const std::vector<std::string>& values,
                          Emitter& out) const {
  common::BloomFilter merged(filter_bits_, 4);
  for (const auto& v : values) {
    merged.merge(common::BloomFilter::parse(v));
  }
  out.emit(key, merged.serialize());
}

CostModel GrepBloomApp::cost() const {
  CostModel c;
  c.map_flops_per_byte = 10.0;
  c.reduce_flops_per_byte = 4.0;
  // Output is the fixed-size filter, independent of matches: tiny ratios.
  c.map_output_ratio = 0.0002;
  c.reduce_output_ratio = 0.05;
  return c;
}

// --- page_rank -----------------------------------------------------------------

void PageRankApp::map(std::string_view chunk, Emitter& out) const {
  const auto [id, body] = split_chunk_header(chunk);
  (void)id;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t eol = body.find('\n', pos);
    if (eol == std::string_view::npos) eol = body.size();
    const std::string_view line = body.substr(pos, eol - pos);
    pos = eol + 1;
    const std::size_t sep = line.find(' ');
    if (sep == std::string_view::npos) continue;
    const std::string node(line.substr(0, sep));
    const std::string_view payload = line.substr(sep + 1);
    const std::size_t bar = payload.find('|');
    if (bar == std::string_view::npos) continue;
    double rank = 0;
    if (!common::parse_double(payload.substr(0, bar), &rank)) continue;
    const std::string links(payload.substr(bar + 1));

    // Preserve the link structure for the next iteration.
    out.emit(node, "L|" + links);

    // Distribute this node's rank over its out-links.
    if (links.empty()) continue;
    const std::vector<std::string> targets = common::split(links, ',');
    const double share = rank / static_cast<double>(targets.size());
    const std::string share_str = common::strprintf("C%.9f", share);
    for (const auto& t : targets) {
      if (!t.empty()) out.emit(t, share_str);
    }
  }
}

void PageRankApp::reduce(const std::string& key,
                         const std::vector<std::string>& values,
                         Emitter& out) const {
  double sum = 0;
  std::string links;
  for (const auto& v : values) {
    if (v.size() >= 2 && v[0] == 'L' && v[1] == '|') {
      links = v.substr(2);
    } else if (!v.empty() && v[0] == 'C') {
      double share = 0;
      if (common::parse_double(v.substr(1), &share)) sum += share;
    }
  }
  // Unnormalised damped update, the standard MapReduce-example form.
  out.emit(key, common::strprintf("%.9f", 0.15 + 0.85 * sum) + "|" + links);
}

CostModel PageRankApp::cost() const {
  CostModel c;
  c.map_flops_per_byte = 20.0;
  c.reduce_flops_per_byte = 12.0;
  c.map_output_ratio = 1.6;   // link list + one share per edge
  c.reduce_output_ratio = 0.6;
  return c;
}

// --- length_histogram -------------------------------------------------------------

void LengthHistogramApp::map(std::string_view chunk, Emitter& out) const {
  const auto [id, body] = split_chunk_header(chunk);
  (void)id;
  for_each_word(body, [&out](const std::string& w) {
    out.emit("len" + std::to_string(std::min<std::size_t>(w.size(), 20)), "1");
  });
}

void LengthHistogramApp::reduce(const std::string& key,
                                const std::vector<std::string>& values,
                                Emitter& out) const {
  out.emit(key, std::to_string(sum_values(values)));
}

bool LengthHistogramApp::combine(const std::string& key,
                                 const std::vector<std::string>& values,
                                 Emitter& out) const {
  out.emit(key, std::to_string(sum_values(values)));
  return true;
}

CostModel LengthHistogramApp::cost() const {
  CostModel c;
  c.map_flops_per_byte = 25.0;
  c.reduce_flops_per_byte = 10.0;
  c.map_output_ratio = 1.1;
  c.reduce_output_ratio = 1e-5;     // ~21 keys total
  return c;
}

}  // namespace vcmr::mr
