#pragma once
// Built-in MapReduce applications.
//
// word_count is the paper's proof-of-concept workload (§III.C / §IV); the
// others are classic MapReduce examples (Dean & Ghemawat §2.3) included to
// exercise the API beyond a single app: distributed grep, inverted index,
// and a word-length histogram.

#include <string>

#include "mr/app.h"

namespace vcmr::mr {

/// Tokenizes on non-alphanumeric bytes, lowercases, emits ("word", "1");
/// reduce sums the counts. Matches the paper's description: "The map
/// function reads an input file word by word and outputs one line per
/// word, with the format 'word 1'".
class WordCountApp : public MapReduceApp {
 public:
  std::string name() const override { return "word_count"; }
  void map(std::string_view chunk, Emitter& out) const override;
  void reduce(const std::string& key, const std::vector<std::string>& values,
              Emitter& out) const override;
  bool combine(const std::string& key, const std::vector<std::string>& values,
               Emitter& out) const override;
  CostModel cost() const override;
};

/// Emits ("<pattern>", line) for every line containing the pattern; reduce
/// concatenates match counts per pattern.
class GrepApp : public MapReduceApp {
 public:
  explicit GrepApp(std::string pattern = "volunteer") : pattern_(std::move(pattern)) {}
  std::string name() const override { return "grep"; }
  void map(std::string_view chunk, Emitter& out) const override;
  void reduce(const std::string& key, const std::vector<std::string>& values,
              Emitter& out) const override;
  CostModel cost() const override;

 private:
  std::string pattern_;
};

/// Emits (word, chunk-position) pairs; reduce produces a sorted, deduplicated
/// posting list per word. Chunk id is injected via the per-chunk prefix
/// convention (see task.h: chunks carry a "#chunk <id>\n" header line).
class InvertedIndexApp : public MapReduceApp {
 public:
  std::string name() const override { return "inverted_index"; }
  void map(std::string_view chunk, Emitter& out) const override;
  void reduce(const std::string& key, const std::vector<std::string>& values,
              Emitter& out) const override;
  CostModel cost() const override;
};

/// Consumes *word-count output* ("word N" lines) and histograms the counts
/// into decade buckets ("1-9", "10-99", ...); the canonical second stage of
/// a word-count → frequency-of-frequencies workflow (§II: "many
/// applications can be broken down into sequences of MapReduce jobs").
class CountRangeApp : public MapReduceApp {
 public:
  std::string name() const override { return "count_range"; }
  void map(std::string_view chunk, Emitter& out) const override;
  void reduce(const std::string& key, const std::vector<std::string>& values,
              Emitter& out) const override;
  bool combine(const std::string& key, const std::vector<std::string>& values,
               Emitter& out) const override;
  CostModel cost() const override;
};

/// ParaMEDIC-style grep (§V ref [30]: "using the reduce phase as a bloom
/// filter enabled large scale"): instead of shipping matching lines, map
/// emits a constant-size Bloom filter of the matches in its chunk; reduce
/// ORs the filters into one membership structure. Consumers probe the
/// merged filter and re-check positives locally — intermediate volume is
/// O(filter size), independent of match count.
class GrepBloomApp : public MapReduceApp {
 public:
  explicit GrepBloomApp(std::string pattern = "volunteer",
                        std::size_t filter_bits = 8192)
      : pattern_(std::move(pattern)), filter_bits_(filter_bits) {}
  std::string name() const override { return "grep_bloom"; }
  void map(std::string_view chunk, Emitter& out) const override;
  void reduce(const std::string& key, const std::vector<std::string>& values,
              Emitter& out) const override;
  CostModel cost() const override;

 private:
  std::string pattern_;
  std::size_t filter_bits_;
};

/// One PageRank iteration over an adjacency-list input (lines of
/// "node rank|n1,n2,..."). Map re-emits each node's link list and sends a
/// rank share to every neighbour; reduce recombines them with damping 0.85
/// and emits the next iteration's input — so running the app K times
/// through core::run_chain performs K power iterations on volunteers.
/// This is the §II/§VI "more complex applications as MapReduce sequences"
/// workload (the classic iterative-MapReduce example).
class PageRankApp : public MapReduceApp {
 public:
  std::string name() const override { return "page_rank"; }
  void map(std::string_view chunk, Emitter& out) const override;
  void reduce(const std::string& key, const std::vector<std::string>& values,
              Emitter& out) const override;
  CostModel cost() const override;
};

/// Emits (word-length bucket, 1); reduce sums. Tiny key space, so reduce
/// input is heavily skewed to few reducers — a useful partitioning stress.
class LengthHistogramApp : public MapReduceApp {
 public:
  std::string name() const override { return "length_histogram"; }
  void map(std::string_view chunk, Emitter& out) const override;
  void reduce(const std::string& key, const std::vector<std::string>& values,
              Emitter& out) const override;
  bool combine(const std::string& key, const std::vector<std::string>& values,
               Emitter& out) const override;
  CostModel cost() const override;
};

}  // namespace vcmr::mr
