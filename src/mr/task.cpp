#include "mr/task.h"

#include "common/error.h"
#include "mr/keyvalue.h"
#include "mr/partition.h"

namespace vcmr::mr {

namespace {

common::Digest128 modelled_digest(std::string_view tag, int sub = -1) {
  common::Hasher h;
  h.update(tag);
  if (sub >= 0) h.update_u64(static_cast<std::uint64_t>(sub));
  return h.digest();
}

/// Applies the app's combiner to a bucket of records when it has one.
std::vector<KeyValue> maybe_combine(const MapReduceApp& app,
                                    std::vector<KeyValue> records,
                                    bool use_combiner) {
  if (!use_combiner) return records;
  Emitter out;
  bool any = false;
  for (auto& [key, values] : group_by_key(records)) {
    Emitter one;
    if (!app.combine(key, values, one)) return records;  // no combiner
    any = true;
    for (auto& kv : one.take()) out.emit(std::move(kv.key), std::move(kv.value));
  }
  return any ? out.take() : records;
}

}  // namespace

MapTaskResult run_map_task(const MapReduceApp& app, const FilePayload& input,
                           int n_reducers, std::string_view task_tag,
                           bool use_combiner) {
  require(n_reducers >= 1, "run_map_task: need at least one reducer");
  MapTaskResult res;
  res.flops = app.cost().map_flops_per_byte * static_cast<double>(input.size);
  res.partitions.resize(static_cast<std::size_t>(n_reducers));

  if (input.materialised()) {
    Emitter emitter;
    app.map(*input.content, emitter);
    std::vector<KeyValue> records =
        maybe_combine(app, emitter.take(), use_combiner);

    std::vector<std::vector<KeyValue>> buckets(
        static_cast<std::size_t>(n_reducers));
    for (auto& kv : records) {
      buckets[static_cast<std::size_t>(partition_of(kv.key, n_reducers))]
          .push_back(std::move(kv));
    }
    common::Hasher all;
    for (int p = 0; p < n_reducers; ++p) {
      std::string payload = serialize_kvs(buckets[static_cast<std::size_t>(p)]);
      all.update(payload);
      res.partitions[static_cast<std::size_t>(p)] =
          FilePayload::of_content(std::move(payload));
    }
    res.digest = all.digest();
    return res;
  }

  // Modelled mode: total output = input * ratio, split evenly over
  // partitions (hash partitioning balances keys in expectation).
  const auto total_out = static_cast<Bytes>(
      static_cast<double>(input.size) * app.cost().map_output_ratio);
  const std::vector<Bytes> sizes = split_sizes(total_out, n_reducers);
  for (int p = 0; p < n_reducers; ++p) {
    res.partitions[static_cast<std::size_t>(p)] = FilePayload::of_size(
        sizes[static_cast<std::size_t>(p)], modelled_digest(task_tag, p));
  }
  res.digest = modelled_digest(task_tag);
  return res;
}

ReduceTaskResult run_reduce_task(const MapReduceApp& app,
                                 const std::vector<FilePayload>& inputs,
                                 std::string_view task_tag) {
  ReduceTaskResult res;
  Bytes total_in = 0;
  bool all_materialised = !inputs.empty();
  for (const auto& in : inputs) {
    total_in += in.size;
    if (!in.materialised()) all_materialised = false;
  }
  res.flops = app.cost().reduce_flops_per_byte * static_cast<double>(total_in);

  if (all_materialised) {
    std::vector<KeyValue> records;
    for (const auto& in : inputs) {
      auto kvs = parse_kvs(*in.content);
      records.insert(records.end(), std::make_move_iterator(kvs.begin()),
                     std::make_move_iterator(kvs.end()));
    }
    Emitter out;
    for (auto& [key, values] : group_by_key(records)) {
      app.reduce(key, values, out);
    }
    res.output = FilePayload::of_content(serialize_kvs(out.records()));
    res.digest = res.output.digest;
    return res;
  }

  const auto out_size = static_cast<Bytes>(
      static_cast<double>(total_in) * app.cost().reduce_output_ratio);
  res.output = FilePayload::of_size(out_size, modelled_digest(task_tag));
  res.digest = res.output.digest;
  return res;
}

}  // namespace vcmr::mr
