#pragma once
// Input datasets: payloads, splitting, and synthetic corpus generation.
//
// The paper fixes a 1 GB input file split into as many chunks as map work
// units (§IV.A). FilePayload represents a file either *materialised*
// (content present; small-scale tests and examples) or *modelled* (size
// and digest only; cluster-scale benches). split_text cuts a real corpus
// at word boundaries; ZipfCorpus generates deterministic text with a
// Zipfian word distribution, the standard model for natural-language word
// frequencies.

#include <optional>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "common/types.h"

namespace vcmr::mr {

struct FilePayload {
  Bytes size = 0;
  common::Digest128 digest;
  std::optional<std::string> content;  ///< absent in modelled mode

  bool materialised() const { return content.has_value(); }

  static FilePayload of_content(std::string content);
  static FilePayload of_size(Bytes size, const common::Digest128& digest);
};

/// Splits text into `n` near-equal chunks, never mid-word; each chunk is
/// prefixed with a "#chunk <i>\n" header so apps can recover the chunk id
/// (the inverted index uses it as the document id).
std::vector<std::string> split_text(const std::string& text, int n);

/// Modelled-mode analogue: sizes only, same near-equal division.
std::vector<Bytes> split_sizes(Bytes total, int n);

/// Parameters of the synthetic corpus generator.
struct ZipfOptions {
  std::int64_t vocabulary = 10000;  ///< distinct words
  double exponent = 1.1;            ///< Zipf skew
  int words_per_line = 12;
};

/// Deterministic synthetic directed graph in PageRank adjacency format:
/// one line per node, "n<i> 1.0|n<a>,n<b>,...", out-degrees uniform in
/// [1, 2*avg_degree-1], self-loops excluded.
std::string synthetic_graph(int n_nodes, int avg_degree, common::Rng& rng);

/// Deterministic synthetic corpus with Zipf-distributed words.
class ZipfCorpus {
 public:
  explicit ZipfCorpus(ZipfOptions opts = {}) : opts_(opts) {}

  /// Generates at least `target` bytes of text (ends at a line boundary).
  std::string generate(Bytes target, common::Rng& rng) const;

  /// The word at a given frequency rank ("w1" is the most common).
  static std::string word_for_rank(std::int64_t rank);

 private:
  ZipfOptions opts_;
};

}  // namespace vcmr::mr
