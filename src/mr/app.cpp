#include "mr/app.h"

#include <mutex>

#include "common/error.h"
#include "mr/apps.h"

namespace vcmr::mr {

AppRegistry& AppRegistry::instance() {
  static AppRegistry reg;
  return reg;
}

void AppRegistry::register_app(std::unique_ptr<MapReduceApp> app) {
  require(app != nullptr, "AppRegistry: null app");
  require(find(app->name()) == nullptr, "AppRegistry: duplicate app name");
  apps_.push_back(std::move(app));
}

const MapReduceApp* AppRegistry::find(const std::string& name) const {
  for (const auto& app : apps_) {
    if (app->name() == name) return app.get();
  }
  return nullptr;
}

std::vector<std::string> AppRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(apps_.size());
  for (const auto& app : apps_) out.push_back(app->name());
  return out;
}

void register_builtin_apps() {
  // Called lazily from JobTracker/client construction, which under
  // bench::SeedPool happens on several worker threads at once. call_once
  // makes the check-then-insert atomic; after the first return the
  // registry is never mutated again, so concurrent find() is read-only.
  static std::once_flag once;
  std::call_once(once, [] {
    AppRegistry& reg = AppRegistry::instance();
    if (reg.find("word_count")) return;  // already done
    reg.register_app(std::make_unique<WordCountApp>());
    reg.register_app(std::make_unique<GrepApp>());
    reg.register_app(std::make_unique<InvertedIndexApp>());
    reg.register_app(std::make_unique<LengthHistogramApp>());
    reg.register_app(std::make_unique<CountRangeApp>());
    reg.register_app(std::make_unique<PageRankApp>());
    reg.register_app(std::make_unique<GrepBloomApp>());
  });
}

}  // namespace vcmr::mr
