#pragma once
// The MapReduce application interface.
//
// The paper's prototype bakes MapReduce behaviour directly into the word
// count executable (§III.C: "we inserted MapReduce functionalities into the
// code") and defers a "full-blown MapReduce API" to future work. VCMR
// implements that future-work API: applications subclass MapReduceApp once
// and then run unchanged on the local threaded runtime, on simulated plain
// BOINC, or on simulated BOINC-MR.
//
// Each app also carries a CostModel so cluster-scale experiments can run in
// *modelled* mode — task durations and output sizes derived from input
// sizes — without materialising gigabytes of text.

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mr/keyvalue.h"

namespace vcmr::mr {

/// Collects emitted records during map or reduce execution.
class Emitter {
 public:
  void emit(std::string key, std::string value) {
    records_.push_back({std::move(key), std::move(value)});
  }
  const std::vector<KeyValue>& records() const { return records_; }
  std::vector<KeyValue> take() { return std::move(records_); }

 private:
  std::vector<KeyValue> records_;
};

/// Resource/size model for modelled-mode execution.
struct CostModel {
  /// Work per input byte; duration = bytes * flops_per_byte / host_flops.
  double map_flops_per_byte = 30.0;
  double reduce_flops_per_byte = 15.0;
  /// Bytes of map output per byte of map input (word count ≈ 1.15: every
  /// word becomes "word 1\n").
  double map_output_ratio = 1.0;
  /// Bytes of reduce output per byte of reduce input.
  double reduce_output_ratio = 0.05;
};

class MapReduceApp {
 public:
  virtual ~MapReduceApp() = default;

  virtual std::string name() const = 0;

  /// Processes one input chunk; emits intermediate records.
  virtual void map(std::string_view chunk, Emitter& out) const = 0;

  /// Combines all values observed for one key; emits final records.
  virtual void reduce(const std::string& key,
                      const std::vector<std::string>& values,
                      Emitter& out) const = 0;

  /// Optional combiner run on map output before partitioning (same
  /// signature as reduce); returns false when the app has none.
  virtual bool combine(const std::string& key,
                       const std::vector<std::string>& values,
                       Emitter& out) const {
    (void)key;
    (void)values;
    (void)out;
    return false;
  }

  virtual CostModel cost() const { return CostModel{}; }
};

/// Global registry so scenarios can name apps in configuration files.
class AppRegistry {
 public:
  static AppRegistry& instance();

  void register_app(std::unique_ptr<MapReduceApp> app);
  /// nullptr when unknown.
  const MapReduceApp* find(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  std::vector<std::unique_ptr<MapReduceApp>> apps_;
};

/// Registers the built-in apps (word_count, grep, inverted_index,
/// length_histogram); idempotent.
void register_builtin_apps();

}  // namespace vcmr::mr
