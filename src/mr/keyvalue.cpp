#include "mr/keyvalue.h"

namespace vcmr::mr {

std::string serialize_kvs(const std::vector<KeyValue>& kvs) {
  std::string out;
  std::size_t total = 0;
  for (const auto& kv : kvs) total += kv.key.size() + kv.value.size() + 2;
  out.reserve(total);
  for (const auto& kv : kvs) {
    out += kv.key;
    out += ' ';
    out += kv.value;
    out += '\n';
  }
  return out;
}

std::vector<KeyValue> parse_kvs(std::string_view payload) {
  std::vector<KeyValue> out;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t eol = payload.find('\n', pos);
    if (eol == std::string_view::npos) eol = payload.size();
    const std::string_view line = payload.substr(pos, eol - pos);
    pos = eol + 1;
    const std::size_t sep = line.find(' ');
    if (sep == std::string_view::npos || sep == 0) continue;
    out.push_back({std::string(line.substr(0, sep)),
                   std::string(line.substr(sep + 1))});
  }
  return out;
}

std::map<std::string, std::vector<std::string>> group_by_key(
    const std::vector<KeyValue>& kvs) {
  std::map<std::string, std::vector<std::string>> out;
  for (const auto& kv : kvs) out[kv.key].push_back(kv.value);
  return out;
}

}  // namespace vcmr::mr
