#pragma once
// Key partitioning: the paper's scheme is "each map output's key is hashed
// and the output file it writes to is decided ... modulo the number of
// reducers" (§III.C). All runtimes (local, plain BOINC, BOINC-MR) share
// this function, so every execution agrees on which reducer owns a key.

#include <string_view>

#include "common/error.h"
#include "common/hash.h"

namespace vcmr::mr {

inline int partition_of(std::string_view key, int n_reducers) {
  require(n_reducers >= 1, "partition_of: need at least one reducer");
  return static_cast<int>(common::fnv1a64(key) %
                          static_cast<std::uint64_t>(n_reducers));
}

}  // namespace vcmr::mr
