#include "mr/dataset.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "common/error.h"

namespace vcmr::mr {

FilePayload FilePayload::of_content(std::string content) {
  FilePayload p;
  p.size = static_cast<Bytes>(content.size());
  p.digest = common::Hasher::of(content);
  p.content = std::move(content);
  return p;
}

FilePayload FilePayload::of_size(Bytes size, const common::Digest128& digest) {
  FilePayload p;
  p.size = size;
  p.digest = digest;
  return p;
}

std::vector<std::string> split_text(const std::string& text, int n) {
  require(n >= 1, "split_text: need at least one chunk");
  std::vector<std::string> chunks;
  chunks.reserve(static_cast<std::size_t>(n));
  const std::size_t total = text.size();
  std::size_t start = 0;
  for (int i = 0; i < n; ++i) {
    std::size_t end = total * static_cast<std::size_t>(i + 1) /
                      static_cast<std::size_t>(n);
    // A long word may have dragged the previous boundary past this one.
    end = std::max(end, start);
    // Never cut mid-word: advance to the next whitespace byte.
    while (end < total && end > start &&
           !std::isspace(static_cast<unsigned char>(text[end]))) {
      ++end;
    }
    if (i == n - 1) end = total;
    std::string chunk = "#chunk " + std::to_string(i) + "\n";
    chunk.append(text, start, end - start);
    chunks.push_back(std::move(chunk));
    start = end;
  }
  return chunks;
}

std::vector<Bytes> split_sizes(Bytes total, int n) {
  require(n >= 1, "split_sizes: need at least one chunk");
  require(total >= 0, "split_sizes: negative total");
  std::vector<Bytes> out;
  out.reserve(static_cast<std::size_t>(n));
  Bytes start = 0;
  for (int i = 0; i < n; ++i) {
    const Bytes end = total * (i + 1) / n;
    out.push_back(end - start);
    start = end;
  }
  return out;
}

std::string synthetic_graph(int n_nodes, int avg_degree, common::Rng& rng) {
  require(n_nodes >= 2, "synthetic_graph: need at least two nodes");
  require(avg_degree >= 1, "synthetic_graph: need avg_degree >= 1");
  std::string out;
  for (int i = 0; i < n_nodes; ++i) {
    out += "n" + std::to_string(i) + " 1.0|";
    const std::int64_t degree =
        rng.uniform_int(1, std::max<std::int64_t>(1, 2 * avg_degree - 1));
    std::set<std::int64_t> targets;
    while (static_cast<std::int64_t>(targets.size()) < degree) {
      const std::int64_t t = rng.uniform_int(0, n_nodes - 1);
      if (t != i) targets.insert(t);
    }
    bool first = true;
    for (const std::int64_t t : targets) {
      if (!first) out += ',';
      out += "n" + std::to_string(t);
      first = false;
    }
    out += '\n';
  }
  return out;
}

std::string ZipfCorpus::word_for_rank(std::int64_t rank) {
  // Readable pseudo-words: base-20 consonant-vowel pairs keyed by rank,
  // so "w" + digits never collides with natural tokenisation oddities.
  static const char* syllables[] = {"ba", "ce", "di", "fo", "gu", "he", "ji",
                                    "ko", "lu", "ma", "ne", "pi", "qo", "ru",
                                    "sa", "te", "vi", "wo", "xu", "za"};
  std::string w;
  std::int64_t r = rank;
  do {
    w += syllables[r % 20];
    r /= 20;
  } while (r > 0);
  return w;
}

std::string ZipfCorpus::generate(Bytes target, common::Rng& rng) const {
  require(target >= 0, "ZipfCorpus::generate: negative target");
  std::string out;
  out.reserve(static_cast<std::size_t>(target) + 64);
  int col = 0;
  while (static_cast<Bytes>(out.size()) < target) {
    const std::int64_t rank = rng.zipf(opts_.vocabulary, opts_.exponent);
    out += word_for_rank(rank);
    if (++col >= opts_.words_per_line) {
      out += '\n';
      col = 0;
    } else {
      out += ' ';
    }
  }
  if (out.empty() || out.back() != '\n') out += '\n';
  return out;
}

}  // namespace vcmr::mr
