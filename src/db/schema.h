#pragma once
// Record types of the project database.
//
// These mirror the slice of BOINC's MySQL schema that the paper's
// mechanisms live on: workunits and results with their three state axes
// (server_state / outcome / validate_state), file infos, hosts, apps —
// plus the BOINC-MR additions: a MapReduce job record and the map-output
// location registry the JobTracker keeps (§III.B: "Information on which
// users ran map tasks for each MapReduce job is saved on the central
// database").

#include <optional>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/types.h"
#include "net/endpoint.h"

namespace vcmr::db {

/// Where a result instance is in its server-side lifecycle.
enum class ServerState {
  kInactive,    ///< created but not yet feedable
  kUnsent,      ///< ready to be handed to a host
  kInProgress,  ///< sent to a host, awaiting report
  kOver,        ///< reported, timed out, or aborted
};
const char* to_string(ServerState s);

/// How a finished result ended.
enum class Outcome {
  kInit,         ///< not over yet
  kSuccess,
  kCouldntSend,
  kClientError,
  kNoReply,      ///< deadline passed without a report
  kValidateError,
  kAbandoned,
  // Appended (not inserted): snapshots serialize outcomes as integers.
  kLost,         ///< client lost the work (crash/restart) or its outputs
};
const char* to_string(Outcome o);

enum class ValidateState {
  kInit,          ///< not validated yet
  kValid,
  kInvalid,
  kInconclusive,  ///< no quorum yet
};
const char* to_string(ValidateState v);

enum class AssimilateState { kInit, kReady, kDone };

/// A named file known to the project: inputs staged on the data server,
/// or outputs living on the uploading client (BOINC-MR keeps map outputs
/// client-side) and optionally mirrored to the server.
struct FileRecord {
  FileId id;
  std::string name;
  Bytes size = 0;
  common::Digest128 digest;
  bool on_server = false;               ///< staged/mirrored at the data server
  std::optional<HostId> on_host;        ///< client currently holding it
  int reduce_partition = -1;  ///< for map outputs: the reducer that wants it
};

/// Which MapReduce phase a workunit belongs to.
enum class MrPhase { kNone, kMap, kReduce };

struct WorkUnitRecord {
  WorkUnitId id;
  std::string name;
  AppId app;
  std::vector<FileId> input_files;

  // Replication / validation policy (paper: 2 results per WU, quorum 2).
  int target_nresults = 2;
  int min_quorum = 2;
  int max_error_results = 6;
  int max_total_results = 12;
  SimTime delay_bound = SimTime::hours(24);  ///< per-result report deadline

  bool canonical_found = false;
  ResultId canonical_result;
  common::Digest128 canonical_digest;
  AssimilateState assimilate_state = AssimilateState::kInit;
  bool error_mass = false;  ///< too many errors; WU abandoned
  /// Spot-check escalation (vcmr::rep): the feeder dispatches audit results
  /// ahead of bulk work so trust verdicts don't queue behind the cache.
  bool audit = false;

  /// Estimated work per result (BOINC's rsc_fpops_est); drives both the
  /// scheduler's fill-the-request-seconds matchmaking and client runtime.
  double flops_est = 0.0;

  // BOINC-MR annotations (the <mapreduce> tag in the WU template).
  MrPhase mr_phase = MrPhase::kNone;
  MrJobId mr_job;
  int mr_index = -1;  ///< map index in [0,M) or reduce partition in [0,R)
};

struct ResultRecord {
  ResultId id;
  std::string name;
  WorkUnitId wu;

  ServerState server_state = ServerState::kInactive;
  Outcome outcome = Outcome::kInit;
  ValidateState validate_state = ValidateState::kInit;

  HostId host;                       ///< assignee once sent
  SimTime sent_time;
  SimTime report_deadline;
  SimTime received_time;

  // What the client reported. BOINC-MR reports digests of map outputs
  // instead of shipping the files (§III.B).
  common::Digest128 output_digest;
  Bytes output_bytes = 0;
  bool output_on_server = false;     ///< payload physically uploaded
  std::vector<FileId> output_files;

  /// BOINC's credit flow: the client claims credit with its report; the
  /// validator grants the quorum's minimum claim to every valid replica,
  /// so inflated claims from cheaters are clipped by honest ones.
  double claimed_credit = 0;
  double granted_credit = 0;
};

struct HostRecord {
  HostId id;
  std::string name;
  NodeId node;          ///< network attachment point
  double flops = 3e9;   ///< effective flops for task duration
  int cores = 1;
  bool mr_capable = false;  ///< BOINC-MR client (supports inter-client xfer)
  net::Endpoint mr_endpoint;  ///< where it serves map outputs
  double total_credit = 0;    ///< lifetime granted credit

  // Validation history kept by vcmr::rep (BOINC's adaptive-replication host
  // fields). `error_rate` starts at the pessimistic prior and is
  // exponentially decayed toward each validate outcome; any invalid result
  // or runtime error resets the consecutive-valid streak.
  int consecutive_valid = 0;
  double error_rate = 0.1;
  std::int64_t results_valid = 0;
  std::int64_t results_invalid = 0;
  std::int64_t results_inconclusive = 0;
  std::int64_t results_errored = 0;  ///< client errors + timeouts
};

struct AppRecord {
  AppId id;
  std::string name;
};

/// One mapper's validated output for one reduce partition.
struct MapOutputLocation {
  int map_index = -1;
  int reduce_partition = -1;
  FileId file;
  HostId holder;               ///< canonical host serving the file
  net::Endpoint endpoint;      ///< its inter-client address (IP:port)
  bool mirrored_on_server = false;
};

enum class MrJobState { kMapPhase, kReducePhase, kDone, kFailed };

struct MrJobRecord {
  MrJobId id;
  std::string name;
  AppId app;
  int n_maps = 0;
  int n_reducers = 0;
  MrJobState state = MrJobState::kMapPhase;
  std::vector<MapOutputLocation> map_outputs;  ///< filled as maps validate
  SimTime created;
  SimTime map_first_sent = SimTime::infinity();    ///< first map assignment
  SimTime reduce_first_sent = SimTime::infinity(); ///< first reduce assignment
  SimTime map_done;   ///< all map WUs validated
  SimTime finished;   ///< all reduce WUs assimilated
};

}  // namespace vcmr::db
