#pragma once
// In-memory project database with the query surface the daemons need.
//
// BOINC runs its daemons against MySQL; here the whole project lives in
// one process, so the database is a set of ordered tables with typed
// accessors and the handful of secondary lookups the scheduler, feeder,
// transitioner, validator, and JobTracker perform. Ordered containers keep
// iteration deterministic. A text snapshot (save/load) stands in for
// persistence.

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "db/schema.h"

namespace vcmr::db {

class Database {
 public:
  // --- creation -----------------------------------------------------------
  AppRecord& create_app(const std::string& name);
  HostRecord& create_host(const HostRecord& proto);
  FileRecord& create_file(const FileRecord& proto);
  WorkUnitRecord& create_workunit(const WorkUnitRecord& proto);
  ResultRecord& create_result(const ResultRecord& proto);
  MrJobRecord& create_mr_job(const MrJobRecord& proto);

  // --- typed lookup (throws on unknown id) ---------------------------------
  AppRecord& app(AppId id);
  HostRecord& host(HostId id);
  FileRecord& file(FileId id);
  WorkUnitRecord& workunit(WorkUnitId id);
  ResultRecord& result(ResultId id);
  MrJobRecord& mr_job(MrJobId id);
  const AppRecord& app(AppId id) const;
  const HostRecord& host(HostId id) const;
  const FileRecord& file(FileId id) const;
  const WorkUnitRecord& workunit(WorkUnitId id) const;
  const ResultRecord& result(ResultId id) const;
  const MrJobRecord& mr_job(MrJobId id) const;

  std::optional<FileId> find_file_by_name(const std::string& name) const;
  std::optional<WorkUnitId> find_workunit_by_name(const std::string& name) const;

  // --- state transitions (index-maintaining) -------------------------------
  /// Change a result's server_state. This is the only supported way to move
  /// a result in or out of kUnsent: it keeps the feeder's ready queues
  /// (unsent_audit / unsent_bulk / unsent_bulk_by_job) in sync, replacing
  /// the full-table scan the feeder used to do per pass. No-op if the state
  /// is unchanged.
  void set_server_state(ResultId id, ServerState s);
  /// Flip a workunit's audit flag, reclassifying its still-unsent results
  /// between the audit-first and bulk ready queues (the scheduler marks
  /// spot-check WUs audit after their replicas were created).
  void set_workunit_audit(WorkUnitId id, bool audit);

  // --- queries used by the daemons -----------------------------------------
  /// Results of a workunit, id order.
  std::vector<ResultId> results_of(WorkUnitId wu) const;
  /// All unsent results, id order (merged from the ready queues).
  std::vector<ResultId> unsent_results() const;
  /// Feeder ready queues: unsent results of audit-flagged workunits, id
  /// order; unsent bulk results, id order; and the bulk queue sharded by
  /// job (the feeder's fair-share round-robin walks one shard per round).
  const std::set<ResultId>& unsent_audit() const { return unsent_audit_; }
  const std::set<ResultId>& unsent_bulk() const { return unsent_bulk_; }
  const std::map<MrJobId, std::set<ResultId>>& unsent_bulk_by_job() const {
    return unsent_bulk_by_job_;
  }
  /// In-progress results whose report deadline has passed at `now`.
  std::vector<ResultId> timed_out_results(SimTime now) const;
  /// Workunits flagged for transitioner attention.
  std::vector<WorkUnitId> transition_pending() const;
  void flag_transition(WorkUnitId wu);
  void clear_transition(WorkUnitId wu);
  /// Workunits of a MapReduce job in a given phase.
  std::vector<WorkUnitId> workunits_of_job(MrJobId job, MrPhase phase) const;
  /// In-progress results currently assigned to a host.
  std::vector<ResultId> in_progress_on_host(HostId host) const;

  // --- iteration (deterministic order) -------------------------------------
  void for_each_workunit(const std::function<void(const WorkUnitRecord&)>& fn) const;
  void for_each_result(const std::function<void(const ResultRecord&)>& fn) const;
  void for_each_host(const std::function<void(const HostRecord&)>& fn) const;
  void for_each_mr_job(const std::function<void(const MrJobRecord&)>& fn) const;

  std::size_t workunit_count() const { return workunits_.size(); }
  std::size_t result_count() const { return results_.size(); }
  std::size_t host_count() const { return hosts_.size(); }
  std::size_t file_count() const { return files_.size(); }

  // --- persistence ----------------------------------------------------------
  /// Text snapshot of all tables; `load` reconstructs an equivalent database.
  std::string save() const;
  static Database load(const std::string& snapshot);
  /// Crash recovery: replace this database's contents with the snapshot,
  /// but keep the id counters at least as high as they are now — the
  /// autoincrement state survives a rollback (as MySQL's would on disk), so
  /// results assigned after the snapshot are never re-minted under the same
  /// id while clients still hold the originals.
  void restore_from(const std::string& snapshot);

 private:
  void index_unsent(const ResultRecord& r);
  void unindex_unsent(const ResultRecord& r);

  std::map<AppId, AppRecord> apps_;
  std::map<HostId, HostRecord> hosts_;
  std::map<FileId, FileRecord> files_;
  std::map<WorkUnitId, WorkUnitRecord> workunits_;
  std::map<ResultId, ResultRecord> results_;
  std::map<MrJobId, MrJobRecord> mr_jobs_;
  std::map<std::string, FileId> file_by_name_;
  std::map<std::string, WorkUnitId> wu_by_name_;
  std::map<WorkUnitId, std::vector<ResultId>> results_by_wu_;
  std::map<WorkUnitId, bool> transition_flag_;
  /// Feeder ready queues, maintained at create_result / set_server_state /
  /// set_workunit_audit time so no daemon pass ever rescans the result
  /// table for unsent work.
  std::set<ResultId> unsent_audit_;
  std::set<ResultId> unsent_bulk_;
  std::map<MrJobId, std::set<ResultId>> unsent_bulk_by_job_;

  std::int64_t next_app_ = 1;
  std::int64_t next_host_ = 1;
  std::int64_t next_file_ = 1;
  std::int64_t next_wu_ = 1;
  std::int64_t next_result_ = 1;
  std::int64_t next_job_ = 1;
};

}  // namespace vcmr::db
