#include "db/database.h"

#include <algorithm>
#include <iterator>

#include "common/error.h"
#include "common/strings.h"
#include "common/xml.h"

namespace vcmr::db {

const char* to_string(ServerState s) {
  switch (s) {
    case ServerState::kInactive: return "inactive";
    case ServerState::kUnsent: return "unsent";
    case ServerState::kInProgress: return "in_progress";
    case ServerState::kOver: return "over";
  }
  return "?";
}

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kInit: return "init";
    case Outcome::kSuccess: return "success";
    case Outcome::kCouldntSend: return "couldnt_send";
    case Outcome::kClientError: return "client_error";
    case Outcome::kNoReply: return "no_reply";
    case Outcome::kValidateError: return "validate_error";
    case Outcome::kAbandoned: return "abandoned";
    case Outcome::kLost: return "lost";
  }
  return "?";
}

const char* to_string(ValidateState v) {
  switch (v) {
    case ValidateState::kInit: return "init";
    case ValidateState::kValid: return "valid";
    case ValidateState::kInvalid: return "invalid";
    case ValidateState::kInconclusive: return "inconclusive";
  }
  return "?";
}

// --- creation ---------------------------------------------------------------

AppRecord& Database::create_app(const std::string& name) {
  const AppId id{next_app_++};
  AppRecord rec;
  rec.id = id;
  rec.name = name;
  return apps_.emplace(id, std::move(rec)).first->second;
}

HostRecord& Database::create_host(const HostRecord& proto) {
  const HostId id{next_host_++};
  HostRecord rec = proto;
  rec.id = id;
  if (rec.name.empty()) rec.name = "host" + std::to_string(id.value());
  return hosts_.emplace(id, std::move(rec)).first->second;
}

FileRecord& Database::create_file(const FileRecord& proto) {
  require(!proto.name.empty(), "create_file: file needs a name");
  require(file_by_name_.count(proto.name) == 0,
          "create_file: duplicate file name");
  const FileId id{next_file_++};
  FileRecord rec = proto;
  rec.id = id;
  file_by_name_[rec.name] = id;
  return files_.emplace(id, std::move(rec)).first->second;
}

WorkUnitRecord& Database::create_workunit(const WorkUnitRecord& proto) {
  require(!proto.name.empty(), "create_workunit: needs a name");
  require(wu_by_name_.count(proto.name) == 0,
          "create_workunit: duplicate workunit name");
  const WorkUnitId id{next_wu_++};
  WorkUnitRecord rec = proto;
  rec.id = id;
  wu_by_name_[rec.name] = id;
  transition_flag_[id] = true;  // newborn WUs need the transitioner
  return workunits_.emplace(id, std::move(rec)).first->second;
}

ResultRecord& Database::create_result(const ResultRecord& proto) {
  const ResultId id{next_result_++};
  ResultRecord rec = proto;
  rec.id = id;
  if (rec.name.empty()) {
    rec.name = workunit(rec.wu).name + "_" +
               std::to_string(results_by_wu_[rec.wu].size());
  }
  results_by_wu_[rec.wu].push_back(id);
  ResultRecord& stored = results_.emplace(id, std::move(rec)).first->second;
  if (stored.server_state == ServerState::kUnsent) index_unsent(stored);
  return stored;
}

MrJobRecord& Database::create_mr_job(const MrJobRecord& proto) {
  const MrJobId id{next_job_++};
  MrJobRecord rec = proto;
  rec.id = id;
  return mr_jobs_.emplace(id, std::move(rec)).first->second;
}

// --- lookup ------------------------------------------------------------------

namespace {
template <class Map, class Id>
auto& lookup(Map& map, Id id, const char* what) {
  const auto it = map.find(id);
  if (it == map.end()) throw Error(std::string("Database: unknown ") + what);
  return it->second;
}
}  // namespace

AppRecord& Database::app(AppId id) { return lookup(apps_, id, "app"); }
HostRecord& Database::host(HostId id) { return lookup(hosts_, id, "host"); }
FileRecord& Database::file(FileId id) { return lookup(files_, id, "file"); }
WorkUnitRecord& Database::workunit(WorkUnitId id) {
  return lookup(workunits_, id, "workunit");
}
ResultRecord& Database::result(ResultId id) {
  return lookup(results_, id, "result");
}
MrJobRecord& Database::mr_job(MrJobId id) {
  return lookup(mr_jobs_, id, "mr_job");
}
const AppRecord& Database::app(AppId id) const { return lookup(apps_, id, "app"); }
const HostRecord& Database::host(HostId id) const {
  return lookup(hosts_, id, "host");
}
const FileRecord& Database::file(FileId id) const {
  return lookup(files_, id, "file");
}
const WorkUnitRecord& Database::workunit(WorkUnitId id) const {
  return lookup(workunits_, id, "workunit");
}
const ResultRecord& Database::result(ResultId id) const {
  return lookup(results_, id, "result");
}
const MrJobRecord& Database::mr_job(MrJobId id) const {
  return lookup(mr_jobs_, id, "mr_job");
}

std::optional<FileId> Database::find_file_by_name(const std::string& name) const {
  const auto it = file_by_name_.find(name);
  if (it == file_by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<WorkUnitId> Database::find_workunit_by_name(
    const std::string& name) const {
  const auto it = wu_by_name_.find(name);
  if (it == wu_by_name_.end()) return std::nullopt;
  return it->second;
}

// --- state transitions ----------------------------------------------------------

void Database::index_unsent(const ResultRecord& r) {
  const WorkUnitRecord& wu = workunit(r.wu);
  if (wu.audit) {
    unsent_audit_.insert(r.id);
  } else {
    unsent_bulk_.insert(r.id);
    unsent_bulk_by_job_[wu.mr_job].insert(r.id);
  }
}

void Database::unindex_unsent(const ResultRecord& r) {
  // The audit flag may have flipped since classification; erase from both
  // queues unconditionally.
  unsent_audit_.erase(r.id);
  unsent_bulk_.erase(r.id);
  const auto it = unsent_bulk_by_job_.find(workunit(r.wu).mr_job);
  if (it != unsent_bulk_by_job_.end()) {
    it->second.erase(r.id);
    if (it->second.empty()) unsent_bulk_by_job_.erase(it);
  }
}

void Database::set_server_state(ResultId id, ServerState s) {
  ResultRecord& r = result(id);
  if (r.server_state == s) return;
  if (r.server_state == ServerState::kUnsent) unindex_unsent(r);
  r.server_state = s;
  if (s == ServerState::kUnsent) index_unsent(r);
}

void Database::set_workunit_audit(WorkUnitId id, bool audit) {
  WorkUnitRecord& wu = workunit(id);
  if (wu.audit == audit) return;
  wu.audit = audit;
  for (const ResultId rid : results_of(id)) {
    const ResultRecord& r = result(rid);
    if (r.server_state != ServerState::kUnsent) continue;
    unindex_unsent(r);
    index_unsent(r);
  }
}

// --- queries -------------------------------------------------------------------

std::vector<ResultId> Database::results_of(WorkUnitId wu) const {
  const auto it = results_by_wu_.find(wu);
  return it == results_by_wu_.end() ? std::vector<ResultId>{} : it->second;
}

std::vector<ResultId> Database::unsent_results() const {
  std::vector<ResultId> out;
  out.reserve(unsent_audit_.size() + unsent_bulk_.size());
  std::merge(unsent_audit_.begin(), unsent_audit_.end(), unsent_bulk_.begin(),
             unsent_bulk_.end(), std::back_inserter(out));
  return out;
}

std::vector<ResultId> Database::timed_out_results(SimTime now) const {
  std::vector<ResultId> out;
  for (const auto& [id, r] : results_) {
    if (r.server_state == ServerState::kInProgress && r.report_deadline <= now) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<WorkUnitId> Database::transition_pending() const {
  std::vector<WorkUnitId> out;
  for (const auto& [id, flag] : transition_flag_) {
    if (flag) out.push_back(id);
  }
  return out;
}

void Database::flag_transition(WorkUnitId wu) { transition_flag_[wu] = true; }
void Database::clear_transition(WorkUnitId wu) { transition_flag_[wu] = false; }

std::vector<WorkUnitId> Database::workunits_of_job(MrJobId job,
                                                   MrPhase phase) const {
  std::vector<WorkUnitId> out;
  for (const auto& [id, wu] : workunits_) {
    if (wu.mr_job == job && wu.mr_phase == phase) out.push_back(id);
  }
  return out;
}

std::vector<ResultId> Database::in_progress_on_host(HostId host) const {
  std::vector<ResultId> out;
  for (const auto& [id, r] : results_) {
    if (r.server_state == ServerState::kInProgress && r.host == host) {
      out.push_back(id);
    }
  }
  return out;
}

// --- iteration -------------------------------------------------------------------

void Database::for_each_workunit(
    const std::function<void(const WorkUnitRecord&)>& fn) const {
  for (const auto& [id, wu] : workunits_) fn(wu);
}
void Database::for_each_result(
    const std::function<void(const ResultRecord&)>& fn) const {
  for (const auto& [id, r] : results_) fn(r);
}
void Database::for_each_host(
    const std::function<void(const HostRecord&)>& fn) const {
  for (const auto& [id, h] : hosts_) fn(h);
}
void Database::for_each_mr_job(
    const std::function<void(const MrJobRecord&)>& fn) const {
  for (const auto& [id, j] : mr_jobs_) fn(j);
}

// --- persistence -------------------------------------------------------------------

namespace {

using common::XmlNode;

void put_i64(XmlNode& n, const char* key, std::int64_t v) {
  n.add_child_text(key, std::to_string(v));
}
void put_digest(XmlNode& n, const char* key, const common::Digest128& d) {
  XmlNode& c = n.add_child(key);
  put_i64(c, "hi", static_cast<std::int64_t>(d.hi));
  put_i64(c, "lo", static_cast<std::int64_t>(d.lo));
}
common::Digest128 get_digest(const XmlNode& n, const char* key) {
  common::Digest128 d;
  if (const XmlNode* c = n.child(key)) {
    d.hi = static_cast<std::uint64_t>(c->child_i64("hi"));
    d.lo = static_cast<std::uint64_t>(c->child_i64("lo"));
  }
  return d;
}

}  // namespace

std::string Database::save() const {
  XmlNode root("vcmr_db");
  for (const auto& [id, a] : apps_) {
    XmlNode& n = root.add_child("app");
    put_i64(n, "id", a.id.value());
    n.add_child_text("name", a.name);
  }
  for (const auto& [id, h] : hosts_) {
    XmlNode& n = root.add_child("host");
    put_i64(n, "id", h.id.value());
    n.add_child_text("name", h.name);
    put_i64(n, "node", h.node.value());
    n.add_child_text("flops", common::strprintf("%.17g", h.flops));
    put_i64(n, "cores", h.cores);
    put_i64(n, "mr_capable", h.mr_capable ? 1 : 0);
    put_i64(n, "mr_node", h.mr_endpoint.node.value());
    put_i64(n, "mr_port", h.mr_endpoint.port);
    n.add_child_text("total_credit", common::strprintf("%.17g", h.total_credit));
    put_i64(n, "consecutive_valid", h.consecutive_valid);
    n.add_child_text("error_rate", common::strprintf("%.17g", h.error_rate));
    put_i64(n, "results_valid", h.results_valid);
    put_i64(n, "results_invalid", h.results_invalid);
    put_i64(n, "results_inconclusive", h.results_inconclusive);
    put_i64(n, "results_errored", h.results_errored);
  }
  for (const auto& [id, f] : files_) {
    XmlNode& n = root.add_child("file");
    put_i64(n, "id", f.id.value());
    n.add_child_text("name", f.name);
    put_i64(n, "size", f.size);
    put_digest(n, "digest", f.digest);
    put_i64(n, "on_server", f.on_server ? 1 : 0);
    if (f.on_host) put_i64(n, "on_host", f.on_host->value());
    put_i64(n, "reduce_partition", f.reduce_partition);
  }
  for (const auto& [id, w] : workunits_) {
    XmlNode& n = root.add_child("workunit");
    put_i64(n, "id", w.id.value());
    n.add_child_text("name", w.name);
    put_i64(n, "app", w.app.value());
    for (const FileId fid : w.input_files) put_i64(n, "input_file", fid.value());
    put_i64(n, "target_nresults", w.target_nresults);
    put_i64(n, "min_quorum", w.min_quorum);
    put_i64(n, "max_error_results", w.max_error_results);
    put_i64(n, "max_total_results", w.max_total_results);
    put_i64(n, "delay_bound_us", w.delay_bound.as_micros());
    put_i64(n, "canonical_found", w.canonical_found ? 1 : 0);
    put_i64(n, "canonical_result", w.canonical_result.value());
    put_digest(n, "canonical_digest", w.canonical_digest);
    put_i64(n, "assimilate_state", static_cast<int>(w.assimilate_state));
    put_i64(n, "error_mass", w.error_mass ? 1 : 0);
    put_i64(n, "audit", w.audit ? 1 : 0);
    n.add_child_text("flops_est", common::strprintf("%.17g", w.flops_est));
    put_i64(n, "mr_phase", static_cast<int>(w.mr_phase));
    put_i64(n, "mr_job", w.mr_job.value());
    put_i64(n, "mr_index", w.mr_index);
  }
  for (const auto& [id, r] : results_) {
    XmlNode& n = root.add_child("result");
    put_i64(n, "id", r.id.value());
    n.add_child_text("name", r.name);
    put_i64(n, "wu", r.wu.value());
    put_i64(n, "server_state", static_cast<int>(r.server_state));
    put_i64(n, "outcome", static_cast<int>(r.outcome));
    put_i64(n, "validate_state", static_cast<int>(r.validate_state));
    put_i64(n, "host", r.host.value());
    put_i64(n, "sent_us", r.sent_time.as_micros());
    put_i64(n, "deadline_us", r.report_deadline.as_micros());
    put_i64(n, "received_us", r.received_time.as_micros());
    put_digest(n, "output_digest", r.output_digest);
    put_i64(n, "output_bytes", r.output_bytes);
    put_i64(n, "output_on_server", r.output_on_server ? 1 : 0);
    for (const FileId fid : r.output_files) put_i64(n, "output_file", fid.value());
    n.add_child_text("claimed_credit", common::strprintf("%.17g", r.claimed_credit));
    n.add_child_text("granted_credit", common::strprintf("%.17g", r.granted_credit));
  }
  for (const auto& [id, j] : mr_jobs_) {
    XmlNode& n = root.add_child("mr_job");
    put_i64(n, "id", j.id.value());
    n.add_child_text("name", j.name);
    put_i64(n, "app", j.app.value());
    put_i64(n, "n_maps", j.n_maps);
    put_i64(n, "n_reducers", j.n_reducers);
    put_i64(n, "state", static_cast<int>(j.state));
    put_i64(n, "created_us", j.created.as_micros());
    put_i64(n, "map_first_sent_us", j.map_first_sent.as_micros());
    put_i64(n, "reduce_first_sent_us", j.reduce_first_sent.as_micros());
    put_i64(n, "map_done_us", j.map_done.as_micros());
    put_i64(n, "finished_us", j.finished.as_micros());
    for (const auto& loc : j.map_outputs) {
      XmlNode& l = n.add_child("map_output");
      put_i64(l, "map_index", loc.map_index);
      put_i64(l, "reduce_partition", loc.reduce_partition);
      put_i64(l, "file", loc.file.value());
      put_i64(l, "holder", loc.holder.value());
      put_i64(l, "ep_node", loc.endpoint.node.value());
      put_i64(l, "ep_port", loc.endpoint.port);
      put_i64(l, "mirrored", loc.mirrored_on_server ? 1 : 0);
    }
  }
  return root.to_string();
}

Database Database::load(const std::string& snapshot) {
  Database out;
  const auto root = common::xml_parse(snapshot);
  require(root->name() == "vcmr_db", "Database::load: bad snapshot root");

  for (const auto& c : root->all_children()) {
    const XmlNode& n = *c;
    if (n.name() == "app") {
      AppRecord a;
      a.id = AppId{n.child_i64("id")};
      a.name = n.child_text("name");
      out.apps_[a.id] = a;
      out.next_app_ = std::max(out.next_app_, a.id.value() + 1);
    } else if (n.name() == "host") {
      HostRecord h;
      h.id = HostId{n.child_i64("id")};
      h.name = n.child_text("name");
      h.node = NodeId{n.child_i64("node")};
      h.flops = n.child_double("flops");
      h.cores = static_cast<int>(n.child_i64("cores"));
      h.mr_capable = n.child_i64("mr_capable") != 0;
      h.mr_endpoint = {NodeId{n.child_i64("mr_node")},
                       static_cast<int>(n.child_i64("mr_port"))};
      h.total_credit = n.child_double("total_credit");
      h.consecutive_valid =
          static_cast<int>(n.child_i64("consecutive_valid", 0));
      h.error_rate = n.child_double("error_rate", h.error_rate);
      h.results_valid = n.child_i64("results_valid", 0);
      h.results_invalid = n.child_i64("results_invalid", 0);
      h.results_inconclusive = n.child_i64("results_inconclusive", 0);
      h.results_errored = n.child_i64("results_errored", 0);
      out.hosts_[h.id] = h;
      out.next_host_ = std::max(out.next_host_, h.id.value() + 1);
    } else if (n.name() == "file") {
      FileRecord f;
      f.id = FileId{n.child_i64("id")};
      f.name = n.child_text("name");
      f.size = n.child_i64("size");
      f.digest = get_digest(n, "digest");
      f.on_server = n.child_i64("on_server") != 0;
      if (n.has_child("on_host")) f.on_host = HostId{n.child_i64("on_host")};
      f.reduce_partition = static_cast<int>(n.child_i64("reduce_partition", -1));
      out.file_by_name_[f.name] = f.id;
      out.files_[f.id] = f;
      out.next_file_ = std::max(out.next_file_, f.id.value() + 1);
    } else if (n.name() == "workunit") {
      WorkUnitRecord w;
      w.id = WorkUnitId{n.child_i64("id")};
      w.name = n.child_text("name");
      w.app = AppId{n.child_i64("app")};
      for (const XmlNode* fc : n.children("input_file")) {
        std::int64_t v = 0;
        common::parse_i64(fc->text(), &v);
        w.input_files.push_back(FileId{v});
      }
      w.target_nresults = static_cast<int>(n.child_i64("target_nresults"));
      w.min_quorum = static_cast<int>(n.child_i64("min_quorum"));
      w.max_error_results = static_cast<int>(n.child_i64("max_error_results"));
      w.max_total_results = static_cast<int>(n.child_i64("max_total_results"));
      w.delay_bound = SimTime::micros(n.child_i64("delay_bound_us"));
      w.canonical_found = n.child_i64("canonical_found") != 0;
      w.canonical_result = ResultId{n.child_i64("canonical_result")};
      w.canonical_digest = get_digest(n, "canonical_digest");
      w.assimilate_state =
          static_cast<AssimilateState>(n.child_i64("assimilate_state"));
      w.error_mass = n.child_i64("error_mass") != 0;
      w.audit = n.child_i64("audit", 0) != 0;
      w.flops_est = n.child_double("flops_est");
      w.mr_phase = static_cast<MrPhase>(n.child_i64("mr_phase"));
      w.mr_job = MrJobId{n.child_i64("mr_job")};
      w.mr_index = static_cast<int>(n.child_i64("mr_index"));
      out.wu_by_name_[w.name] = w.id;
      out.workunits_[w.id] = w;
      out.transition_flag_[w.id] = false;
      out.next_wu_ = std::max(out.next_wu_, w.id.value() + 1);
    } else if (n.name() == "result") {
      ResultRecord r;
      r.id = ResultId{n.child_i64("id")};
      r.name = n.child_text("name");
      r.wu = WorkUnitId{n.child_i64("wu")};
      r.server_state = static_cast<ServerState>(n.child_i64("server_state"));
      r.outcome = static_cast<Outcome>(n.child_i64("outcome"));
      r.validate_state =
          static_cast<ValidateState>(n.child_i64("validate_state"));
      r.host = HostId{n.child_i64("host")};
      r.sent_time = SimTime::micros(n.child_i64("sent_us"));
      r.report_deadline = SimTime::micros(n.child_i64("deadline_us"));
      r.received_time = SimTime::micros(n.child_i64("received_us"));
      r.output_digest = get_digest(n, "output_digest");
      r.output_bytes = n.child_i64("output_bytes");
      r.output_on_server = n.child_i64("output_on_server") != 0;
      for (const XmlNode* fc : n.children("output_file")) {
        std::int64_t v = 0;
        common::parse_i64(fc->text(), &v);
        r.output_files.push_back(FileId{v});
      }
      r.claimed_credit = n.child_double("claimed_credit");
      r.granted_credit = n.child_double("granted_credit");
      out.results_by_wu_[r.wu].push_back(r.id);
      out.results_[r.id] = r;
      // Workunits precede results in the snapshot, so the audit flag that
      // classifies the ready queues is already loaded.
      if (r.server_state == ServerState::kUnsent) out.index_unsent(out.results_[r.id]);
      out.next_result_ = std::max(out.next_result_, r.id.value() + 1);
    } else if (n.name() == "mr_job") {
      MrJobRecord j;
      j.id = MrJobId{n.child_i64("id")};
      j.name = n.child_text("name");
      j.app = AppId{n.child_i64("app")};
      j.n_maps = static_cast<int>(n.child_i64("n_maps"));
      j.n_reducers = static_cast<int>(n.child_i64("n_reducers"));
      j.state = static_cast<MrJobState>(n.child_i64("state"));
      j.created = SimTime::micros(n.child_i64("created_us"));
      j.map_first_sent = SimTime::micros(
          n.child_i64("map_first_sent_us", SimTime::infinity().as_micros()));
      j.reduce_first_sent = SimTime::micros(
          n.child_i64("reduce_first_sent_us", SimTime::infinity().as_micros()));
      j.map_done = SimTime::micros(n.child_i64("map_done_us"));
      j.finished = SimTime::micros(n.child_i64("finished_us"));
      for (const XmlNode* lc : n.children("map_output")) {
        MapOutputLocation loc;
        loc.map_index = static_cast<int>(lc->child_i64("map_index"));
        loc.reduce_partition =
            static_cast<int>(lc->child_i64("reduce_partition"));
        loc.file = FileId{lc->child_i64("file")};
        loc.holder = HostId{lc->child_i64("holder")};
        loc.endpoint = {NodeId{lc->child_i64("ep_node")},
                        static_cast<int>(lc->child_i64("ep_port"))};
        loc.mirrored_on_server = lc->child_i64("mirrored") != 0;
        j.map_outputs.push_back(loc);
      }
      out.mr_jobs_[j.id] = j;
      out.next_job_ = std::max(out.next_job_, j.id.value() + 1);
    }
  }
  return out;
}

void Database::restore_from(const std::string& snapshot) {
  Database loaded = load(snapshot);
  // Autoincrement floors: ids minted between snapshot and crash stay
  // retired, so a reconciled client report can never collide with a
  // post-restore result under a recycled id.
  loaded.next_app_ = std::max(loaded.next_app_, next_app_);
  loaded.next_host_ = std::max(loaded.next_host_, next_host_);
  loaded.next_file_ = std::max(loaded.next_file_, next_file_);
  loaded.next_wu_ = std::max(loaded.next_wu_, next_wu_);
  loaded.next_result_ = std::max(loaded.next_result_, next_result_);
  loaded.next_job_ = std::max(loaded.next_job_, next_job_);
  *this = std::move(loaded);
}

}  // namespace vcmr::db
