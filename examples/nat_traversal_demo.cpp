// NAT traversal demo: the §III.D tier ladder in action.
//
// Builds an Internet volunteer pool with a realistic NAT mix, runs a
// BOINC-MR job with the tiered connection establisher, and reports which
// tier every inter-client connection used — first with the project server
// as the TURN-style relay of last resort, then with a supernode overlay
// carrying the relay traffic instead.

#include <cstdio>

#include "core/cluster.h"
#include "volunteer/population.h"

int main(int argc, char** argv) {
  using namespace vcmr;
  common::LogConfig::instance().set_level(common::LogLevel::kOff);
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  std::printf("NAT traversal demo: 24 volunteers, typical NAT mix "
              "(20%% open / 65%% cone / 15%% symmetric)\n");

  for (const bool overlay : {false, true}) {
    core::Scenario s;
    s.seed = seed;
    s.n_nodes = 24;
    s.n_maps = 24;
    s.n_reducers = 6;
    s.input_size = 100LL * 1000 * 1000;
    s.boinc_mr = true;
    s.use_traversal = true;
    s.use_overlay = overlay;
    s.time_limit = SimTime::hours(24);

    common::Rng natrng(seed + 17);
    s.nat_profiles = volunteer::nat_profiles(s.n_nodes, {}, natrng);
    common::Rng hostrng(seed + 23);
    s.hosts = volunteer::internet_mix(s.n_nodes, hostrng);

    core::Cluster cluster(s);
    const core::RunOutcome out = cluster.run_job();
    const net::TraversalStats& ts = out.traversal;
    const double n = std::max<std::int64_t>(1, ts.attempts);

    std::printf("\n--- relay via %s ---\n",
                overlay ? "supernode overlay" : "project server");
    std::printf("job %s in %.0f s; %lld connection attempts:\n",
                out.metrics.completed ? "completed" : "DID NOT COMPLETE",
                out.metrics.total_seconds,
                static_cast<long long>(ts.attempts));
    std::printf("  direct      %5.1f%%   (target publicly reachable)\n",
                100.0 * ts.direct / n);
    std::printf("  reversal    %5.1f%%   (NATed mapper dials back)\n",
                100.0 * ts.reversal / n);
    std::printf("  hole punch  %5.1f%%   (STUN-style simultaneous open)\n",
                100.0 * ts.hole_punch / n);
    std::printf("  relayed     %5.1f%%   (TURN-style, last resort)\n",
                100.0 * ts.relayed / n);
    std::printf("  failed      %5.1f%%\n", 100.0 * ts.failed / n);
    std::printf("server relay traffic: %.1f MB\n",
                cluster.network().traffic(cluster.server_node()).bytes_relayed /
                    1e6);
    if (overlay && cluster.overlay() != nullptr) {
      std::printf("overlay: %zu supernodes among %zu members\n",
                  cluster.overlay()->supernode_count(),
                  cluster.overlay()->member_count());
    }
    std::printf("peer fetches ok %lld, server fallbacks %lld\n",
                static_cast<long long>([&] {
                  std::int64_t ok = 0;
                  for (std::size_t i = 0; i < cluster.n_clients(); ++i)
                    ok += cluster.client(i).peer_stats().fetches_ok;
                  return ok;
                }()),
                static_cast<long long>(out.server_fallbacks));
  }
  return 0;
}
