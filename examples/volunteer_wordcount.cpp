// The paper's headline scenario as a runnable program: the 1 GB word-count
// job on a 20-node volunteer pool, plain BOINC vs BOINC-MR, with the
// per-host timeline that exposes the exponential-backoff straggler (Fig. 4)
// and the phase/traffic comparison (Table I).

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>
#include <string>

#include "core/cluster.h"

namespace {

void show(const char* name, const vcmr::core::RunOutcome& out,
          vcmr::core::Cluster& cluster) {
  const vcmr::core::JobMetrics& m = out.metrics;
  std::printf("\n=== %s ===\n", name);
  std::printf("  map    : avg task %.0f s [%.0f s without slowest node %s], "
              "phase span %.0f s\n",
              m.map.avg_task_seconds, m.map.avg_task_seconds_trimmed,
              m.map.slowest_host.c_str(), m.map.span_seconds);
  std::printf("  gap    : %.0f s idle between map and reduce (validation + "
              "reduce WU creation + client backoff)\n",
              m.map_to_reduce_gap_seconds);
  std::printf("  reduce : avg task %.0f s [%.0f s], phase span %.0f s\n",
              m.reduce.avg_task_seconds, m.reduce.avg_task_seconds_trimmed,
              m.reduce.span_seconds);
  std::printf("  total  : %.0f s  |  server egress %.0f MB, ingress %.0f MB, "
              "inter-client %.0f MB\n",
              m.total_seconds, out.server_bytes_sent / 1e6,
              out.server_bytes_received / 1e6, out.interclient_bytes / 1e6);
  std::printf("  backoffs %lld, scheduler RPCs %lld, peer fetch attempts %lld "
              "(server fallbacks %lld)\n",
              static_cast<long long>(out.backoffs),
              static_cast<long long>(out.scheduler_rpcs),
              static_cast<long long>(out.peer_fetch_attempts),
              static_cast<long long>(out.server_fallbacks));

  // Per-host timeline of the first 400 simulated seconds.
  std::printf("\n%s\n",
              cluster.trace()
                  .ascii_gantt(vcmr::SimTime::zero(),
                               vcmr::SimTime::seconds(m.total_seconds), 100)
                  .c_str());
}

}  // namespace

// Samples the data server's egress utilization every `step` seconds while
// the job runs and renders it as a sparkline — making the offload visible:
// plain BOINC saturates the server link through the reduce phase, BOINC-MR
// leaves it idle once the map inputs are out.
std::string egress_sparkline(vcmr::core::Cluster& cluster, double horizon_s,
                             double step_s) {
  using namespace vcmr;
  auto& sim = cluster.simulation();
  auto& net = cluster.network();
  const NodeId server = cluster.server_node();
  auto samples = std::make_shared<std::vector<double>>();
  std::function<void()> sample = [&, samples]() {
    samples->push_back(net.instantaneous_tx_bps(server) /
                       net.up_bps(server));
    if (sim.now().as_seconds() < horizon_s) {
      sim.after(SimTime::seconds(step_s), sample);
    }
  };
  sim.after(SimTime::zero(), sample);

  const core::RunOutcome out = cluster.run_job();
  (void)out;
  static const char* levels[] = {" ", ".", ":", "-", "=", "#"};
  std::string line;
  for (const double u : *samples) {
    const int idx = std::min(5, static_cast<int>(u * 5.999));
    line += levels[idx];
  }
  return line;
}

int main(int argc, char** argv) {
  using namespace vcmr;
  common::LogConfig::instance().set_level(common::LogLevel::kOff);
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;

  for (const bool mr : {false, true}) {
    core::Scenario s;
    s.seed = seed;
    s.n_nodes = 20;
    s.n_maps = 20;
    s.n_reducers = 5;
    s.input_size = 1000LL * 1000 * 1000;  // the paper's fixed 1 GB input
    s.boinc_mr = mr;
    s.record_trace = true;
    core::Cluster cluster(s);
    const core::RunOutcome out = cluster.run_job();
    show(mr ? "BOINC-MR client (inter-client transfers)"
            : "plain BOINC client 6.13.0 (all data via server)",
         out, cluster);
  }

  // Server-egress utilization timelines (fresh runs with a sampler).
  std::printf("\n=== data-server egress utilization (10 s per char, '#'=100%%) ===\n");
  for (const bool mr : {false, true}) {
    core::Scenario s;
    s.seed = seed;
    s.n_nodes = 20;
    s.n_maps = 20;
    s.n_reducers = 5;
    s.input_size = 1000LL * 1000 * 1000;
    s.boinc_mr = mr;
    core::Cluster cluster(s);
    const std::string spark = egress_sparkline(cluster, 1100, 10);
    std::printf("%-9s |%s|\n", mr ? "BOINC-MR" : "BOINC", spark.c_str());
  }
  return 0;
}
