// A MapReduce *workflow* on volunteers (§II / §VI: MapReduce as "a gateway"
// for complex applications, "many applications can be broken down into
// sequences of MapReduce jobs").
//
// Stage 1: word_count over a Zipf corpus → "word N" lines.
// Stage 2: count_range over stage 1's output → frequency-of-frequencies
//          ("how many words occur 1-9 times, 10-99 times, ...").
//
// Each stage runs as a full BOINC-MR job — replication, quorum validation,
// inter-client transfers — and the chained result is checked against the
// same two stages run on the local threaded runtime.

#include <cstdio>

#include "core/workflow.h"
#include "mr/apps.h"
#include "mr/dataset.h"
#include "mr/local_runtime.h"

int main() {
  using namespace vcmr;
  common::LogConfig::instance().set_level(common::LogLevel::kWarn);

  common::RngStreamFactory seeds(99);
  common::Rng rng = seeds.stream("corpus");
  mr::ZipfOptions zipf;
  zipf.vocabulary = 3000;
  const std::string corpus = mr::ZipfCorpus(zipf).generate(300 * 1024, rng);

  // --- volunteer workflow ----------------------------------------------------
  core::Scenario s;
  s.seed = 21;
  s.n_nodes = 10;
  s.boinc_mr = true;
  s.input_text = corpus;  // placeholder; run_chain supplies stage inputs
  core::Cluster cluster(s);

  const std::vector<core::ChainStage> stages = {
      {"word_count", 8, 4},
      {"count_range", 4, 2},
  };
  const core::ChainResult chain =
      core::run_chain(cluster, "freqfreq", corpus, stages);

  std::printf("workflow: %zu stages, %s\n", chain.stages.size(),
              chain.completed ? "completed" : "FAILED");
  for (std::size_t k = 0; k < chain.stages.size(); ++k) {
    const auto& m = chain.stages[k].metrics;
    std::printf("  stage %zu (%s): %.0f s (map %.0f s, reduce %.0f s)\n", k,
                stages[k].app.c_str(), m.total_seconds, m.map.span_seconds,
                m.reduce.span_seconds);
  }

  // --- local oracle -------------------------------------------------------------
  mr::register_builtin_apps();
  const auto* wc = mr::AppRegistry::instance().find("word_count");
  const auto* cr = mr::AppRegistry::instance().find("count_range");
  const mr::LocalJobResult s1 = mr::run_local(*wc, corpus, {8, 4, 4, true});
  const mr::LocalJobResult s2 =
      mr::run_local(*cr, mr::serialize_kvs(s1.output), {4, 2, 4, true});

  if (chain.final_output == s2.output) {
    std::printf("\nchained output IDENTICAL to local two-stage run\n");
  } else {
    std::printf("\nchained output DIFFERS from the local oracle — bug\n");
    return 1;
  }

  std::printf("\nfrequency of word frequencies:\n");
  for (const auto& kv : chain.final_output) {
    std::printf("  %-22s %s words\n", kv.key.c_str(), kv.value.c_str());
  }
  return 0;
}
