// Churn and byzantine volunteers: runs the word-count job on an Internet
// volunteer pool (heterogeneous broadband hosts) with hosts leaving and
// rejoining, and a fraction of them corrupting results. Shows BOINC's
// defences at work: report deadlines re-replicate lost tasks, quorum
// validation rejects corrupted outputs, and BOINC-MR reducers fall back to
// the server mirror when a mapper peer is offline.

#include <cstdio>

#include "core/cluster.h"
#include "volunteer/byzantine.h"

int main(int argc, char** argv) {
  using namespace vcmr;
  common::LogConfig::instance().set_level(common::LogLevel::kOff);
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;

  core::Scenario s;
  s.seed = seed;
  s.n_nodes = 30;
  s.n_maps = 30;
  s.n_reducers = 5;
  s.input_size = 200LL * 1000 * 1000;
  s.boinc_mr = true;
  s.time_limit = SimTime::hours(24);

  // Heterogeneous broadband volunteers instead of the Emulab testbed.
  common::Rng hostrng(seed);
  s.hosts = volunteer::internet_mix(s.n_nodes, hostrng);

  // 80% availability: ~48 min on, 12 min off on average.
  volunteer::ChurnConfig churn;
  churn.mean_on = SimTime::minutes(48);
  churn.mean_off = SimTime::minutes(12);
  s.churn = churn;

  // 15% of hosts corrupt 60% of their results.
  common::Rng byzrng(seed + 1);
  volunteer::ByzantineMix mix;
  mix.faulty_fraction = 0.15;
  mix.error_probability = 0.6;
  s.error_probabilities = volunteer::error_probabilities(s.n_nodes, mix, byzrng);

  // Tasks stuck on dead hosts should time out in minutes, not hours.
  s.project.delay_bound = SimTime::minutes(45);

  core::Cluster cluster(s);
  const core::RunOutcome out = cluster.run_job();

  std::printf("churn study: 30 broadband volunteers, 80%% availability, "
              "15%% byzantine\n\n");
  std::printf("job %s in %.0f simulated seconds (%.1f h)\n",
              out.metrics.completed ? "COMPLETED" : "did not complete",
              out.metrics.total_seconds, out.metrics.total_seconds / 3600);

  const auto& db = cluster.project().database();
  int success = 0, invalid = 0, no_reply = 0, client_err = 0, abandoned = 0;
  db.for_each_result([&](const db::ResultRecord& r) {
    switch (r.outcome) {
      case db::Outcome::kSuccess: ++success; break;
      case db::Outcome::kValidateError: ++invalid; break;
      case db::Outcome::kNoReply: ++no_reply; break;
      case db::Outcome::kClientError: ++client_err; break;
      case db::Outcome::kAbandoned: ++abandoned; break;
      default: break;
    }
  });
  std::printf("\nresult outcomes: %d valid, %d corrupted (caught by quorum), "
              "%d lost to churn (re-replicated), %d client errors, "
              "%d abandoned\n",
              success, invalid, no_reply, client_err, abandoned);
  std::printf("validator: %lld WUs validated, %lld invalid results, "
              "%lld inconclusive checks (tie-breaks issued)\n",
              static_cast<long long>(cluster.project().validator_stats().wus_validated),
              static_cast<long long>(cluster.project().validator_stats().results_invalid),
              static_cast<long long>(cluster.project().validator_stats().inconclusive_checks));
  std::printf("transitioner: %lld results created (replication + retries), "
              "%lld timed out\n",
              static_cast<long long>(cluster.project().transitioner_stats().results_created),
              static_cast<long long>(cluster.project().transitioner_stats().results_timed_out));

  std::int64_t fallbacks = 0, fetches = 0;
  for (std::size_t i = 0; i < cluster.n_clients(); ++i) {
    fallbacks += cluster.client(i).stats().server_fallbacks;
    fetches += cluster.client(i).peer_stats().fetches_ok;
  }
  std::printf("inter-client: %lld successful peer fetches, %lld fell back to "
              "the server mirror (offline mappers)\n",
              static_cast<long long>(fetches),
              static_cast<long long>(fallbacks));
  return out.metrics.completed ? 0 : 1;
}
