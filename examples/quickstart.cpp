// Quickstart: run a MapReduce job two ways with the VCMR public API.
//
//   1. Locally, on the in-process threaded runtime (mr::run_local) — the
//      fastest way to execute an app on real data.
//   2. On a simulated BOINC-MR volunteer cluster (core::Cluster) — the
//      same app and data, executed by pull-model volunteer clients with
//      replication, quorum validation, and inter-client transfers.
//
// The two outputs are identical; that equivalence is the core correctness
// property of the system.

#include <cstdio>
#include <map>
#include <algorithm>

#include "core/cluster.h"
#include "mr/apps.h"
#include "mr/dataset.h"
#include "common/strings.h"
#include "mr/local_runtime.h"

int main() {
  using namespace vcmr;
  common::LogConfig::instance().set_level(common::LogLevel::kWarn);

  // --- make a deterministic 256 KiB corpus --------------------------------
  common::RngStreamFactory seeds(2024);
  common::Rng corpus_rng = seeds.stream("corpus");
  mr::ZipfOptions zipf;
  zipf.vocabulary = 2000;
  const std::string corpus = mr::ZipfCorpus(zipf).generate(256 * 1024, corpus_rng);
  std::printf("corpus: %zu bytes of Zipf text\n\n", corpus.size());

  // --- 1. local threaded runtime ------------------------------------------
  mr::register_builtin_apps();
  const mr::MapReduceApp* app = mr::AppRegistry::instance().find("word_count");
  mr::LocalJobOptions opts;
  opts.n_maps = 8;
  opts.n_reducers = 4;
  opts.n_threads = 4;
  const mr::LocalJobResult local = mr::run_local(*app, corpus, opts);
  std::printf("[local]   %zu distinct words, %lld B intermediate, %lld B out\n",
              local.output.size(),
              static_cast<long long>(local.intermediate_bytes),
              static_cast<long long>(local.output_bytes));

  // --- 2. simulated BOINC-MR volunteer cluster ------------------------------
  core::Scenario scenario;
  scenario.seed = 7;
  scenario.n_nodes = 8;
  scenario.n_maps = 8;
  scenario.n_reducers = 4;
  scenario.input_text = corpus;
  scenario.boinc_mr = true;  // reducers fetch map outputs from mapper peers
  core::Cluster cluster(scenario);
  const core::RunOutcome out = cluster.run_job();
  std::printf("[cluster] job %s in %.0f simulated seconds "
              "(map %.0f s, reduce %.0f s, %lld peer bytes)\n",
              out.metrics.completed ? "completed" : "FAILED",
              out.metrics.total_seconds, out.metrics.map.span_seconds,
              out.metrics.reduce.span_seconds,
              static_cast<long long>(out.interclient_bytes));

  // --- the equivalence check -----------------------------------------------
  const std::vector<mr::KeyValue> cluster_output =
      cluster.collect_output(out.job);
  if (cluster_output == local.output) {
    std::printf("\noutputs IDENTICAL: volunteer execution == local runtime\n");
  } else {
    std::printf("\noutputs DIFFER — this is a bug\n");
    return 1;
  }

  // --- top 10 words -----------------------------------------------------------
  std::vector<std::pair<std::int64_t, std::string>> top;
  for (const auto& kv : cluster_output) {
    std::int64_t n = 0;
    common::parse_i64(kv.value, &n);
    top.emplace_back(n, kv.key);
  }
  std::sort(top.rbegin(), top.rend());
  std::printf("\ntop words:\n");
  for (std::size_t i = 0; i < 10 && i < top.size(); ++i) {
    std::printf("  %-10s %lld\n", top[i].second.c_str(),
                static_cast<long long>(top[i].first));
  }
  return 0;
}
