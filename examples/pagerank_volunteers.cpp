// Iterative PageRank on volunteers: K power iterations, each a full
// BOINC-MR job, chained with core::run_chain (§II: "there are several
// examples of MapReduce workflows"; §VI: MapReduce as the gateway to more
// complex applications). Every iteration goes through the whole machinery
// — replication, quorum validation, inter-client shuffles — and the final
// ranks are compared against an in-process power iteration.

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/strings.h"
#include "core/workflow.h"
#include "mr/apps.h"
#include "mr/dataset.h"

namespace {

// Reference: the same damped, unnormalised power iteration, in plain code.
std::map<std::string, double> reference_pagerank(
    const std::string& graph, int iterations) {
  using vcmr::common::split;
  std::map<std::string, std::vector<std::string>> adj;
  std::map<std::string, double> rank;
  for (const auto& line : split(graph, '\n')) {
    const auto sep = line.find(' ');
    if (sep == std::string::npos) continue;
    const std::string node = line.substr(0, sep);
    const auto bar = line.find('|', sep);
    if (bar == std::string::npos) continue;
    const std::string links = line.substr(bar + 1);
    adj[node] = links.empty() ? std::vector<std::string>{} : split(links, ',');
    rank[node] = 1.0;
  }
  for (int it = 0; it < iterations; ++it) {
    std::map<std::string, double> next;
    for (const auto& [node, links] : adj) next[node] = 0;
    for (const auto& [node, links] : adj) {
      if (links.empty()) continue;
      const double share = rank[node] / static_cast<double>(links.size());
      for (const auto& t : links) next[t] += share;
    }
    for (auto& [node, sum] : next) rank[node] = 0.15 + 0.85 * sum;
  }
  return rank;
}

}  // namespace

int main() {
  using namespace vcmr;
  common::LogConfig::instance().set_level(common::LogLevel::kWarn);

  common::RngStreamFactory seeds(4242);
  common::Rng rng = seeds.stream("graph");
  const std::string graph = mr::synthetic_graph(400, 4, rng);
  constexpr int kIterations = 4;
  std::printf("PageRank on volunteers: 400-node graph, %d iterations, each a "
              "full BOINC-MR job\n\n", kIterations);

  core::Scenario s;
  s.seed = 33;
  s.n_nodes = 10;
  s.boinc_mr = true;
  s.input_text = graph;
  core::Cluster cluster(s);

  const std::vector<core::ChainStage> stages(
      kIterations, core::ChainStage{"page_rank", 5, 3});
  const core::ChainResult chain =
      core::run_chain(cluster, "pagerank", graph, stages);
  if (!chain.completed) {
    std::printf("chain FAILED\n");
    return 1;
  }
  for (std::size_t k = 0; k < chain.stages.size(); ++k) {
    std::printf("  iteration %zu: %.0f simulated s (map %.0f, reduce %.0f)\n",
                k + 1, chain.stages[k].metrics.total_seconds,
                chain.stages[k].metrics.map.span_seconds,
                chain.stages[k].metrics.reduce.span_seconds);
  }

  // Compare with the reference power iteration.
  const auto ref = reference_pagerank(graph, kIterations);
  double max_err = 0;
  std::vector<std::pair<double, std::string>> ranked;
  for (const auto& kv : chain.final_output) {
    const auto bar = kv.value.find('|');
    double r = 0;
    common::parse_double(kv.value.substr(0, bar), &r);
    ranked.emplace_back(r, kv.key);
    const auto it = ref.find(kv.key);
    if (it != ref.end()) max_err = std::max(max_err, std::abs(r - it->second));
  }
  std::sort(ranked.rbegin(), ranked.rend());

  std::printf("\nmax |volunteer - reference| rank error: %.2e %s\n", max_err,
              max_err < 1e-6 ? "(identical)" : "");
  std::printf("\ntop 8 nodes by rank:\n");
  for (std::size_t i = 0; i < 8 && i < ranked.size(); ++i) {
    std::printf("  %-6s %.4f\n", ranked[i].second.c_str(), ranked[i].first);
  }
  return max_err < 1e-6 ? 0 : 1;
}
