# Empty compiler generated dependencies file for bench_tcpnice.
# This may be replaced when dependencies are built.
