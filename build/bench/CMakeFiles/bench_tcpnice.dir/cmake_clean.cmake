file(REMOVE_RECURSE
  "CMakeFiles/bench_tcpnice.dir/bench_tcpnice.cpp.o"
  "CMakeFiles/bench_tcpnice.dir/bench_tcpnice.cpp.o.d"
  "bench_tcpnice"
  "bench_tcpnice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tcpnice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
