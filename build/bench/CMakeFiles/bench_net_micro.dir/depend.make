# Empty dependencies file for bench_net_micro.
# This may be replaced when dependencies are built.
