file(REMOVE_RECURSE
  "CMakeFiles/bench_net_micro.dir/bench_net_micro.cpp.o"
  "CMakeFiles/bench_net_micro.dir/bench_net_micro.cpp.o.d"
  "bench_net_micro"
  "bench_net_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_net_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
