
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4_timeline.cpp" "bench/CMakeFiles/bench_fig4_timeline.dir/bench_fig4_timeline.cpp.o" "gcc" "bench/CMakeFiles/bench_fig4_timeline.dir/bench_fig4_timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vcmr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/volunteer/CMakeFiles/vcmr_volunteer.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/vcmr_client.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/vcmr_server.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/vcmr_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/vcmr_db.dir/DependInfo.cmake"
  "/root/repo/build/src/mr/CMakeFiles/vcmr_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vcmr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vcmr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vcmr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
