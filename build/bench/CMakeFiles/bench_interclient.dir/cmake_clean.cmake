file(REMOVE_RECURSE
  "CMakeFiles/bench_interclient.dir/bench_interclient.cpp.o"
  "CMakeFiles/bench_interclient.dir/bench_interclient.cpp.o.d"
  "bench_interclient"
  "bench_interclient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interclient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
