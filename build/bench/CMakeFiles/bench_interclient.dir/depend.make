# Empty dependencies file for bench_interclient.
# This may be replaced when dependencies are built.
