# Empty compiler generated dependencies file for bench_mr_micro.
# This may be replaced when dependencies are built.
