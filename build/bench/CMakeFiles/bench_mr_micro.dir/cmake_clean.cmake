file(REMOVE_RECURSE
  "CMakeFiles/bench_mr_micro.dir/bench_mr_micro.cpp.o"
  "CMakeFiles/bench_mr_micro.dir/bench_mr_micro.cpp.o.d"
  "bench_mr_micro"
  "bench_mr_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mr_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
