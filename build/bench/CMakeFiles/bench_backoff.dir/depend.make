# Empty dependencies file for bench_backoff.
# This may be replaced when dependencies are built.
