# Empty dependencies file for bench_nat.
# This may be replaced when dependencies are built.
