file(REMOVE_RECURSE
  "CMakeFiles/bench_nat.dir/bench_nat.cpp.o"
  "CMakeFiles/bench_nat.dir/bench_nat.cpp.o.d"
  "bench_nat"
  "bench_nat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
