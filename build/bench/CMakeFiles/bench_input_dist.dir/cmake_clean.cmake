file(REMOVE_RECURSE
  "CMakeFiles/bench_input_dist.dir/bench_input_dist.cpp.o"
  "CMakeFiles/bench_input_dist.dir/bench_input_dist.cpp.o.d"
  "bench_input_dist"
  "bench_input_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_input_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
