# Empty compiler generated dependencies file for volunteer_wordcount.
# This may be replaced when dependencies are built.
