file(REMOVE_RECURSE
  "CMakeFiles/volunteer_wordcount.dir/volunteer_wordcount.cpp.o"
  "CMakeFiles/volunteer_wordcount.dir/volunteer_wordcount.cpp.o.d"
  "volunteer_wordcount"
  "volunteer_wordcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volunteer_wordcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
