file(REMOVE_RECURSE
  "CMakeFiles/workflow_chain.dir/workflow_chain.cpp.o"
  "CMakeFiles/workflow_chain.dir/workflow_chain.cpp.o.d"
  "workflow_chain"
  "workflow_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
