# Empty compiler generated dependencies file for workflow_chain.
# This may be replaced when dependencies are built.
