# Empty compiler generated dependencies file for nat_traversal_demo.
# This may be replaced when dependencies are built.
