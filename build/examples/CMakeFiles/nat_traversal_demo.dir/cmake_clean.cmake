file(REMOVE_RECURSE
  "CMakeFiles/nat_traversal_demo.dir/nat_traversal_demo.cpp.o"
  "CMakeFiles/nat_traversal_demo.dir/nat_traversal_demo.cpp.o.d"
  "nat_traversal_demo"
  "nat_traversal_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nat_traversal_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
