# Empty dependencies file for pagerank_volunteers.
# This may be replaced when dependencies are built.
