file(REMOVE_RECURSE
  "CMakeFiles/pagerank_volunteers.dir/pagerank_volunteers.cpp.o"
  "CMakeFiles/pagerank_volunteers.dir/pagerank_volunteers.cpp.o.d"
  "pagerank_volunteers"
  "pagerank_volunteers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagerank_volunteers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
