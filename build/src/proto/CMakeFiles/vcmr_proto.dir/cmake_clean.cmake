file(REMOVE_RECURSE
  "CMakeFiles/vcmr_proto.dir/messages.cpp.o"
  "CMakeFiles/vcmr_proto.dir/messages.cpp.o.d"
  "libvcmr_proto.a"
  "libvcmr_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcmr_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
