# Empty compiler generated dependencies file for vcmr_proto.
# This may be replaced when dependencies are built.
