file(REMOVE_RECURSE
  "libvcmr_proto.a"
)
