# Empty compiler generated dependencies file for vcmr_server.
# This may be replaced when dependencies are built.
