file(REMOVE_RECURSE
  "CMakeFiles/vcmr_server.dir/assimilator.cpp.o"
  "CMakeFiles/vcmr_server.dir/assimilator.cpp.o.d"
  "CMakeFiles/vcmr_server.dir/config.cpp.o"
  "CMakeFiles/vcmr_server.dir/config.cpp.o.d"
  "CMakeFiles/vcmr_server.dir/data_server.cpp.o"
  "CMakeFiles/vcmr_server.dir/data_server.cpp.o.d"
  "CMakeFiles/vcmr_server.dir/feeder.cpp.o"
  "CMakeFiles/vcmr_server.dir/feeder.cpp.o.d"
  "CMakeFiles/vcmr_server.dir/jobtracker.cpp.o"
  "CMakeFiles/vcmr_server.dir/jobtracker.cpp.o.d"
  "CMakeFiles/vcmr_server.dir/project.cpp.o"
  "CMakeFiles/vcmr_server.dir/project.cpp.o.d"
  "CMakeFiles/vcmr_server.dir/scheduler.cpp.o"
  "CMakeFiles/vcmr_server.dir/scheduler.cpp.o.d"
  "CMakeFiles/vcmr_server.dir/templates.cpp.o"
  "CMakeFiles/vcmr_server.dir/templates.cpp.o.d"
  "CMakeFiles/vcmr_server.dir/transitioner.cpp.o"
  "CMakeFiles/vcmr_server.dir/transitioner.cpp.o.d"
  "CMakeFiles/vcmr_server.dir/validator.cpp.o"
  "CMakeFiles/vcmr_server.dir/validator.cpp.o.d"
  "libvcmr_server.a"
  "libvcmr_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcmr_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
