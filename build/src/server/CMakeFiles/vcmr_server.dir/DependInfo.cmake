
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/assimilator.cpp" "src/server/CMakeFiles/vcmr_server.dir/assimilator.cpp.o" "gcc" "src/server/CMakeFiles/vcmr_server.dir/assimilator.cpp.o.d"
  "/root/repo/src/server/config.cpp" "src/server/CMakeFiles/vcmr_server.dir/config.cpp.o" "gcc" "src/server/CMakeFiles/vcmr_server.dir/config.cpp.o.d"
  "/root/repo/src/server/data_server.cpp" "src/server/CMakeFiles/vcmr_server.dir/data_server.cpp.o" "gcc" "src/server/CMakeFiles/vcmr_server.dir/data_server.cpp.o.d"
  "/root/repo/src/server/feeder.cpp" "src/server/CMakeFiles/vcmr_server.dir/feeder.cpp.o" "gcc" "src/server/CMakeFiles/vcmr_server.dir/feeder.cpp.o.d"
  "/root/repo/src/server/jobtracker.cpp" "src/server/CMakeFiles/vcmr_server.dir/jobtracker.cpp.o" "gcc" "src/server/CMakeFiles/vcmr_server.dir/jobtracker.cpp.o.d"
  "/root/repo/src/server/project.cpp" "src/server/CMakeFiles/vcmr_server.dir/project.cpp.o" "gcc" "src/server/CMakeFiles/vcmr_server.dir/project.cpp.o.d"
  "/root/repo/src/server/scheduler.cpp" "src/server/CMakeFiles/vcmr_server.dir/scheduler.cpp.o" "gcc" "src/server/CMakeFiles/vcmr_server.dir/scheduler.cpp.o.d"
  "/root/repo/src/server/templates.cpp" "src/server/CMakeFiles/vcmr_server.dir/templates.cpp.o" "gcc" "src/server/CMakeFiles/vcmr_server.dir/templates.cpp.o.d"
  "/root/repo/src/server/transitioner.cpp" "src/server/CMakeFiles/vcmr_server.dir/transitioner.cpp.o" "gcc" "src/server/CMakeFiles/vcmr_server.dir/transitioner.cpp.o.d"
  "/root/repo/src/server/validator.cpp" "src/server/CMakeFiles/vcmr_server.dir/validator.cpp.o" "gcc" "src/server/CMakeFiles/vcmr_server.dir/validator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/vcmr_db.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/vcmr_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/mr/CMakeFiles/vcmr_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vcmr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vcmr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vcmr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
