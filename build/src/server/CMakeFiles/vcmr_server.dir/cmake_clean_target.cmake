file(REMOVE_RECURSE
  "libvcmr_server.a"
)
