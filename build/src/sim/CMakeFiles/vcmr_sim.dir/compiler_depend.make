# Empty compiler generated dependencies file for vcmr_sim.
# This may be replaced when dependencies are built.
