file(REMOVE_RECURSE
  "CMakeFiles/vcmr_sim.dir/event_queue.cpp.o"
  "CMakeFiles/vcmr_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/vcmr_sim.dir/simulation.cpp.o"
  "CMakeFiles/vcmr_sim.dir/simulation.cpp.o.d"
  "CMakeFiles/vcmr_sim.dir/trace.cpp.o"
  "CMakeFiles/vcmr_sim.dir/trace.cpp.o.d"
  "libvcmr_sim.a"
  "libvcmr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcmr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
