file(REMOVE_RECURSE
  "libvcmr_sim.a"
)
