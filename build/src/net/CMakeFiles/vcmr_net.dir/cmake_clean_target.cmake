file(REMOVE_RECURSE
  "libvcmr_net.a"
)
