# Empty compiler generated dependencies file for vcmr_net.
# This may be replaced when dependencies are built.
