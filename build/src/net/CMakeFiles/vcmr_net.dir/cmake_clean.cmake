file(REMOVE_RECURSE
  "CMakeFiles/vcmr_net.dir/http.cpp.o"
  "CMakeFiles/vcmr_net.dir/http.cpp.o.d"
  "CMakeFiles/vcmr_net.dir/nat.cpp.o"
  "CMakeFiles/vcmr_net.dir/nat.cpp.o.d"
  "CMakeFiles/vcmr_net.dir/network.cpp.o"
  "CMakeFiles/vcmr_net.dir/network.cpp.o.d"
  "CMakeFiles/vcmr_net.dir/overlay.cpp.o"
  "CMakeFiles/vcmr_net.dir/overlay.cpp.o.d"
  "CMakeFiles/vcmr_net.dir/traversal.cpp.o"
  "CMakeFiles/vcmr_net.dir/traversal.cpp.o.d"
  "libvcmr_net.a"
  "libvcmr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcmr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
