# Empty dependencies file for vcmr_volunteer.
# This may be replaced when dependencies are built.
