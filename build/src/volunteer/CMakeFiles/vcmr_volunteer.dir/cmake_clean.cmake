file(REMOVE_RECURSE
  "CMakeFiles/vcmr_volunteer.dir/availability.cpp.o"
  "CMakeFiles/vcmr_volunteer.dir/availability.cpp.o.d"
  "CMakeFiles/vcmr_volunteer.dir/population.cpp.o"
  "CMakeFiles/vcmr_volunteer.dir/population.cpp.o.d"
  "libvcmr_volunteer.a"
  "libvcmr_volunteer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcmr_volunteer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
