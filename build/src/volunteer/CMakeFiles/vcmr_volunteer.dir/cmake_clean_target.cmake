file(REMOVE_RECURSE
  "libvcmr_volunteer.a"
)
