file(REMOVE_RECURSE
  "CMakeFiles/vcmr_db.dir/database.cpp.o"
  "CMakeFiles/vcmr_db.dir/database.cpp.o.d"
  "libvcmr_db.a"
  "libvcmr_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcmr_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
