# Empty compiler generated dependencies file for vcmr_db.
# This may be replaced when dependencies are built.
