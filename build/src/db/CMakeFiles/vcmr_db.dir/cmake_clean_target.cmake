file(REMOVE_RECURSE
  "libvcmr_db.a"
)
