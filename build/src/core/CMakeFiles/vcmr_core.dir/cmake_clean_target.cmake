file(REMOVE_RECURSE
  "libvcmr_core.a"
)
