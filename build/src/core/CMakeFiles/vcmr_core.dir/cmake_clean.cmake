file(REMOVE_RECURSE
  "CMakeFiles/vcmr_core.dir/cluster.cpp.o"
  "CMakeFiles/vcmr_core.dir/cluster.cpp.o.d"
  "CMakeFiles/vcmr_core.dir/metrics.cpp.o"
  "CMakeFiles/vcmr_core.dir/metrics.cpp.o.d"
  "CMakeFiles/vcmr_core.dir/scenario_io.cpp.o"
  "CMakeFiles/vcmr_core.dir/scenario_io.cpp.o.d"
  "CMakeFiles/vcmr_core.dir/workflow.cpp.o"
  "CMakeFiles/vcmr_core.dir/workflow.cpp.o.d"
  "libvcmr_core.a"
  "libvcmr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcmr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
