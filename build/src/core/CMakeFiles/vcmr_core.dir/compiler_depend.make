# Empty compiler generated dependencies file for vcmr_core.
# This may be replaced when dependencies are built.
