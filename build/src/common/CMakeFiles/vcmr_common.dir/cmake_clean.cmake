file(REMOVE_RECURSE
  "CMakeFiles/vcmr_common.dir/bloom.cpp.o"
  "CMakeFiles/vcmr_common.dir/bloom.cpp.o.d"
  "CMakeFiles/vcmr_common.dir/hash.cpp.o"
  "CMakeFiles/vcmr_common.dir/hash.cpp.o.d"
  "CMakeFiles/vcmr_common.dir/logging.cpp.o"
  "CMakeFiles/vcmr_common.dir/logging.cpp.o.d"
  "CMakeFiles/vcmr_common.dir/rng.cpp.o"
  "CMakeFiles/vcmr_common.dir/rng.cpp.o.d"
  "CMakeFiles/vcmr_common.dir/stats.cpp.o"
  "CMakeFiles/vcmr_common.dir/stats.cpp.o.d"
  "CMakeFiles/vcmr_common.dir/strings.cpp.o"
  "CMakeFiles/vcmr_common.dir/strings.cpp.o.d"
  "CMakeFiles/vcmr_common.dir/types.cpp.o"
  "CMakeFiles/vcmr_common.dir/types.cpp.o.d"
  "CMakeFiles/vcmr_common.dir/xml.cpp.o"
  "CMakeFiles/vcmr_common.dir/xml.cpp.o.d"
  "libvcmr_common.a"
  "libvcmr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcmr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
