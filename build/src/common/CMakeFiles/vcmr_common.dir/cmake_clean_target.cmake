file(REMOVE_RECURSE
  "libvcmr_common.a"
)
