# Empty dependencies file for vcmr_common.
# This may be replaced when dependencies are built.
