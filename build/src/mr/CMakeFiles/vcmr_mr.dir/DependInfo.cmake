
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mr/app.cpp" "src/mr/CMakeFiles/vcmr_mr.dir/app.cpp.o" "gcc" "src/mr/CMakeFiles/vcmr_mr.dir/app.cpp.o.d"
  "/root/repo/src/mr/apps.cpp" "src/mr/CMakeFiles/vcmr_mr.dir/apps.cpp.o" "gcc" "src/mr/CMakeFiles/vcmr_mr.dir/apps.cpp.o.d"
  "/root/repo/src/mr/dataset.cpp" "src/mr/CMakeFiles/vcmr_mr.dir/dataset.cpp.o" "gcc" "src/mr/CMakeFiles/vcmr_mr.dir/dataset.cpp.o.d"
  "/root/repo/src/mr/keyvalue.cpp" "src/mr/CMakeFiles/vcmr_mr.dir/keyvalue.cpp.o" "gcc" "src/mr/CMakeFiles/vcmr_mr.dir/keyvalue.cpp.o.d"
  "/root/repo/src/mr/local_runtime.cpp" "src/mr/CMakeFiles/vcmr_mr.dir/local_runtime.cpp.o" "gcc" "src/mr/CMakeFiles/vcmr_mr.dir/local_runtime.cpp.o.d"
  "/root/repo/src/mr/task.cpp" "src/mr/CMakeFiles/vcmr_mr.dir/task.cpp.o" "gcc" "src/mr/CMakeFiles/vcmr_mr.dir/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vcmr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
