file(REMOVE_RECURSE
  "CMakeFiles/vcmr_mr.dir/app.cpp.o"
  "CMakeFiles/vcmr_mr.dir/app.cpp.o.d"
  "CMakeFiles/vcmr_mr.dir/apps.cpp.o"
  "CMakeFiles/vcmr_mr.dir/apps.cpp.o.d"
  "CMakeFiles/vcmr_mr.dir/dataset.cpp.o"
  "CMakeFiles/vcmr_mr.dir/dataset.cpp.o.d"
  "CMakeFiles/vcmr_mr.dir/keyvalue.cpp.o"
  "CMakeFiles/vcmr_mr.dir/keyvalue.cpp.o.d"
  "CMakeFiles/vcmr_mr.dir/local_runtime.cpp.o"
  "CMakeFiles/vcmr_mr.dir/local_runtime.cpp.o.d"
  "CMakeFiles/vcmr_mr.dir/task.cpp.o"
  "CMakeFiles/vcmr_mr.dir/task.cpp.o.d"
  "libvcmr_mr.a"
  "libvcmr_mr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcmr_mr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
