# Empty compiler generated dependencies file for vcmr_mr.
# This may be replaced when dependencies are built.
