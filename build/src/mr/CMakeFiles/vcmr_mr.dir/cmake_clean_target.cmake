file(REMOVE_RECURSE
  "libvcmr_mr.a"
)
