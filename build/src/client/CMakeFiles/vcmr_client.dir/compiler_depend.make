# Empty compiler generated dependencies file for vcmr_client.
# This may be replaced when dependencies are built.
