file(REMOVE_RECURSE
  "libvcmr_client.a"
)
