file(REMOVE_RECURSE
  "CMakeFiles/vcmr_client.dir/client.cpp.o"
  "CMakeFiles/vcmr_client.dir/client.cpp.o.d"
  "CMakeFiles/vcmr_client.dir/interclient.cpp.o"
  "CMakeFiles/vcmr_client.dir/interclient.cpp.o.d"
  "libvcmr_client.a"
  "libvcmr_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcmr_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
