# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(vcmr_run_template "/root/repo/build/tools/vcmr_run" "--template")
set_tests_properties(vcmr_run_template PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(vcmr_run_scenario "/root/repo/build/tools/vcmr_run" "/root/repo/scenarios/boincmr_20_20_5.xml")
set_tests_properties(vcmr_run_scenario PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(vcmr_run_echo "/root/repo/build/tools/vcmr_run" "--echo" "/root/repo/scenarios/internet_churn.xml")
set_tests_properties(vcmr_run_echo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(vcmr_snapshot_roundtrip "sh" "-c" "/root/repo/build/tools/vcmr_run /root/repo/scenarios/boincmr_20_20_5.xml --snapshot /root/repo/build/snap.xml && /root/repo/build/tools/vcmr_dbdump /root/repo/build/snap.xml && /root/repo/build/tools/vcmr_dbdump /root/repo/build/snap.xml --hosts")
set_tests_properties(vcmr_snapshot_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
