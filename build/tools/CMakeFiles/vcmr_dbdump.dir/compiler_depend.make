# Empty compiler generated dependencies file for vcmr_dbdump.
# This may be replaced when dependencies are built.
