file(REMOVE_RECURSE
  "CMakeFiles/vcmr_dbdump.dir/vcmr_dbdump.cpp.o"
  "CMakeFiles/vcmr_dbdump.dir/vcmr_dbdump.cpp.o.d"
  "vcmr_dbdump"
  "vcmr_dbdump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcmr_dbdump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
