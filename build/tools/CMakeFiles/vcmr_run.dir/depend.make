# Empty dependencies file for vcmr_run.
# This may be replaced when dependencies are built.
