file(REMOVE_RECURSE
  "CMakeFiles/vcmr_run.dir/vcmr_run.cpp.o"
  "CMakeFiles/vcmr_run.dir/vcmr_run.cpp.o.d"
  "vcmr_run"
  "vcmr_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcmr_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
