file(REMOVE_RECURSE
  "CMakeFiles/test_common_xml.dir/test_common_xml.cpp.o"
  "CMakeFiles/test_common_xml.dir/test_common_xml.cpp.o.d"
  "test_common_xml"
  "test_common_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
