# Empty dependencies file for test_common_xml.
# This may be replaced when dependencies are built.
