# Empty dependencies file for test_integration2.
# This may be replaced when dependencies are built.
