# Empty dependencies file for test_volunteer.
# This may be replaced when dependencies are built.
