file(REMOVE_RECURSE
  "CMakeFiles/test_volunteer.dir/test_volunteer.cpp.o"
  "CMakeFiles/test_volunteer.dir/test_volunteer.cpp.o.d"
  "test_volunteer"
  "test_volunteer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_volunteer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
