file(REMOVE_RECURSE
  "CMakeFiles/test_server_daemons.dir/test_server_daemons.cpp.o"
  "CMakeFiles/test_server_daemons.dir/test_server_daemons.cpp.o.d"
  "test_server_daemons"
  "test_server_daemons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_server_daemons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
