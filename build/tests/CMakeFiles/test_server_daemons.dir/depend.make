# Empty dependencies file for test_server_daemons.
# This may be replaced when dependencies are built.
