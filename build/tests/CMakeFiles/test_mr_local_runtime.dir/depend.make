# Empty dependencies file for test_mr_local_runtime.
# This may be replaced when dependencies are built.
