file(REMOVE_RECURSE
  "CMakeFiles/test_mr_local_runtime.dir/test_mr_local_runtime.cpp.o"
  "CMakeFiles/test_mr_local_runtime.dir/test_mr_local_runtime.cpp.o.d"
  "test_mr_local_runtime"
  "test_mr_local_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mr_local_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
