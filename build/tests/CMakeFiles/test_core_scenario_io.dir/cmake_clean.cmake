file(REMOVE_RECURSE
  "CMakeFiles/test_core_scenario_io.dir/test_core_scenario_io.cpp.o"
  "CMakeFiles/test_core_scenario_io.dir/test_core_scenario_io.cpp.o.d"
  "test_core_scenario_io"
  "test_core_scenario_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_scenario_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
