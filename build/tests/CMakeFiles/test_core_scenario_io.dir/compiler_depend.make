# Empty compiler generated dependencies file for test_core_scenario_io.
# This may be replaced when dependencies are built.
