# Empty compiler generated dependencies file for test_server_data.
# This may be replaced when dependencies are built.
