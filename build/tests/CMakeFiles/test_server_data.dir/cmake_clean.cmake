file(REMOVE_RECURSE
  "CMakeFiles/test_server_data.dir/test_server_data.cpp.o"
  "CMakeFiles/test_server_data.dir/test_server_data.cpp.o.d"
  "test_server_data"
  "test_server_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_server_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
