# Empty compiler generated dependencies file for test_net_nat_traversal.
# This may be replaced when dependencies are built.
