file(REMOVE_RECURSE
  "CMakeFiles/test_net_nat_traversal.dir/test_net_nat_traversal.cpp.o"
  "CMakeFiles/test_net_nat_traversal.dir/test_net_nat_traversal.cpp.o.d"
  "test_net_nat_traversal"
  "test_net_nat_traversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_nat_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
