file(REMOVE_RECURSE
  "CMakeFiles/test_common_hash.dir/test_common_hash.cpp.o"
  "CMakeFiles/test_common_hash.dir/test_common_hash.cpp.o.d"
  "test_common_hash"
  "test_common_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
