# Empty compiler generated dependencies file for test_mr.
# This may be replaced when dependencies are built.
