file(REMOVE_RECURSE
  "CMakeFiles/test_mr.dir/test_mr.cpp.o"
  "CMakeFiles/test_mr.dir/test_mr.cpp.o.d"
  "test_mr"
  "test_mr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
