file(REMOVE_RECURSE
  "CMakeFiles/test_common_bloom.dir/test_common_bloom.cpp.o"
  "CMakeFiles/test_common_bloom.dir/test_common_bloom.cpp.o.d"
  "test_common_bloom"
  "test_common_bloom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
