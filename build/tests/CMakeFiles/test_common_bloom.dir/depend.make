# Empty dependencies file for test_common_bloom.
# This may be replaced when dependencies are built.
