# Empty compiler generated dependencies file for test_net_http.
# This may be replaced when dependencies are built.
