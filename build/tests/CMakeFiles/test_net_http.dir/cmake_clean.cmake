file(REMOVE_RECURSE
  "CMakeFiles/test_net_http.dir/test_net_http.cpp.o"
  "CMakeFiles/test_net_http.dir/test_net_http.cpp.o.d"
  "test_net_http"
  "test_net_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
