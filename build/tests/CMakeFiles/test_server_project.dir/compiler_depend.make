# Empty compiler generated dependencies file for test_server_project.
# This may be replaced when dependencies are built.
