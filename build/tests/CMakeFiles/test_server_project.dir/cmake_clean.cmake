file(REMOVE_RECURSE
  "CMakeFiles/test_server_project.dir/test_server_project.cpp.o"
  "CMakeFiles/test_server_project.dir/test_server_project.cpp.o.d"
  "test_server_project"
  "test_server_project.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_server_project.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
