file(REMOVE_RECURSE
  "CMakeFiles/test_client_behavior.dir/test_client_behavior.cpp.o"
  "CMakeFiles/test_client_behavior.dir/test_client_behavior.cpp.o.d"
  "test_client_behavior"
  "test_client_behavior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_client_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
