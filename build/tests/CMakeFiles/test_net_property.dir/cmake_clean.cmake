file(REMOVE_RECURSE
  "CMakeFiles/test_net_property.dir/test_net_property.cpp.o"
  "CMakeFiles/test_net_property.dir/test_net_property.cpp.o.d"
  "test_net_property"
  "test_net_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
